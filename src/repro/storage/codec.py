"""Binary codec for protocol state (versioned, length-prefixed, checksummed).

Persistence uses the same injective ``encode_parts`` framing as the wire
protocol, wrapped with a magic header, a format version and — since v2 — a
content digest, so stale, truncated or bit-rotted files fail loudly instead
of deserialising garbage.  The digest matters for crash recovery: a cloud
restarting from a snapshot that lost its tail in a mid-write crash must
refuse the file, not silently load a partial index and then fail every
on-chain verification.  JSON is deliberately avoided: the state is
dominated by raw byte strings and big integers, which JSON inflates and
corrupts (no bytes type).
"""

from __future__ import annotations

import hashlib

from ..common.encoding import decode_parts, decode_uint, encode_parts, encode_uint
from ..common.errors import ParameterError

MAGIC = b"SLCR"
#: v2 appends a SHA-256 content digest over (kind, body); v1 files (no
#: digest) predate crash-recovery support and are rejected.
VERSION = 2


def _digest(kind: bytes, body: bytes) -> bytes:
    return hashlib.sha256(encode_parts(MAGIC, kind, body)).digest()


def pack(kind: bytes, *parts: bytes) -> bytes:
    """Frame a record of ``kind`` with magic + version + content digest."""
    body = encode_parts(*parts)
    return encode_parts(
        MAGIC, encode_uint(VERSION, 2), kind, body, _digest(kind, body)
    )


def unpack(blob: bytes, expected_kind: bytes) -> list[bytes]:
    """Inverse of :func:`pack`; validates magic, version, kind and digest."""
    try:
        fields = decode_parts(blob)
    except (ParameterError, ValueError) as exc:
        raise ParameterError(f"not a Slicer state blob: {exc}") from exc
    if len(fields) != 5:
        raise ParameterError(
            f"corrupt state blob: expected 5 framing fields, found {len(fields)}"
        )
    magic, version, kind, body, digest = fields
    if magic != MAGIC:
        raise ParameterError("bad magic; not a Slicer state file")
    if decode_uint(version) != VERSION:
        raise ParameterError(
            f"unsupported state version {decode_uint(version)} (expected {VERSION})"
        )
    if kind != expected_kind:
        raise ParameterError(
            f"state kind mismatch: file holds {kind!r}, expected {expected_kind!r}"
        )
    if _digest(kind, body) != digest:
        raise ParameterError(
            "state blob failed its integrity check (truncated or corrupted)"
        )
    return decode_parts(body)


def encode_int(value: int) -> bytes:
    """Variable-length non-negative integer encoding."""
    if value < 0:
        raise ParameterError("cannot encode negative integers")
    width = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(width, "big")


def decode_int(data: bytes) -> int:
    return int.from_bytes(data, "big")


def encode_mapping(entries: dict[bytes, bytes]) -> bytes:
    """Deterministic (sorted) encoding of a bytes->bytes mapping."""
    parts: list[bytes] = []
    for key in sorted(entries):
        parts.append(key)
        parts.append(entries[key])
    return encode_parts(*parts)


def decode_mapping(blob: bytes) -> dict[bytes, bytes]:
    flat = decode_parts(blob)
    if len(flat) % 2:
        raise ParameterError("corrupt mapping: odd element count")
    return {flat[i]: flat[i + 1] for i in range(0, len(flat), 2)}
