"""Durable epoch-segment store: append-only persistence for the cloud's state.

Slicer's forward-secure index is append-only by construction — an epoch's
entries are immutable once written — so the natural durable representation
is a chain of immutable **segments**, one per committed install (Build or
Insert delta), instead of the whole-state snapshot blobs
:mod:`repro.storage.state_io` rewrites on every change:

* ``seg-00000.slcr``, ``seg-00001.slcr``, … — one codec-v2-framed record
  per installed delta: the delta's index entries, its primes (installation
  order), the post-install accumulation value ``Ac``, and the shard-local
  witness-prime subset (for per-shard stores).  Segment files are written
  once, fsynced, and never modified.
* ``manifest.slcr`` — the small mutable root: the store *plan* fingerprint
  (single-cloud vs a specific shard of a specific tier), the segment chain
  (name, length and SHA-256 digest per segment), the current ``Ac``, and
  the digest of the optional warm-state checkpoint.  Rewritten atomically
  through :func:`state_io.save` (tmp + fsync + rename + directory fsync).
* ``warm.slcr`` — an optional warm-restart checkpoint: entry-cache nodes,
  the witness-cache export, the repeat-witness memo and the kernel memo
  slices (trapdoor chain, ``H_prime``), stamped with the ``(Ac, primes,
  index)`` digests they were computed against.  Purely an accelerator: a
  stale or missing checkpoint degrades to a cold rebuild, never to wrong
  answers.

**Commit protocol.**  ``append`` writes + fsyncs the segment file, fsyncs
the directory, *then* swaps the manifest.  A crash between the two leaves
an orphan segment file beyond the manifest's chain — the **torn tail** —
which :meth:`SegmentStore.open` deletes (the install never committed; the
owner will re-send it).  A manifest-listed segment that is missing, short,
or fails its content digest is **interior corruption**: the history cannot
be reconstructed, so opening refuses with :class:`StateError` rather than
serving a silently partial index.

Segment payloads are read lazily (and mmap-backed when the platform
allows): :meth:`SegmentStore.open` only stats + digests nothing — each
segment is loaded and digest-verified on first replay, so a restarted
cloud pays rehydration cost proportional to what it actually walks.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import pathlib
from typing import Iterator, NamedTuple

from ..common import perfstats
from ..common.encoding import encode_parts
from ..common.errors import ParameterError, StateError
from . import codec
from .state_io import fsync_dir, save

_KIND_MANIFEST = b"segment-manifest"
_KIND_SEGMENT = b"epoch-segment"
_KIND_WARM = b"warm-state"

MANIFEST_NAME = "manifest.slcr"
WARM_NAME = "warm.slcr"

#: Default plan fingerprint for a non-sharded cloud's store.
SINGLE_PLAN = b"single-cloud"


def primes_digest(primes) -> bytes:
    """Order-independent digest of a prime set (any iterable of ints)."""
    encoded = sorted(codec.encode_int(p) for p in primes)
    return hashlib.sha256(encode_parts(b"primes-digest", *encoded)).digest()


def index_digest(entries: dict[bytes, bytes]) -> bytes:
    """Deterministic digest of an index's label->payload map."""
    return hashlib.sha256(codec.encode_mapping(entries)).digest()


def _segment_name(seq: int) -> str:
    return f"seg-{seq:05d}.slcr"


class SegmentRecord(NamedTuple):
    """One manifest entry: the chain's view of an on-disk segment file."""

    name: str
    length: int
    digest: bytes


class Segment(NamedTuple):
    """One decoded epoch segment (one committed install)."""

    seq: int
    entries: dict[bytes, bytes]  # the delta's index entries
    primes: list[int]  # the delta's primes, installation order
    ads_value: int  # Ac after this install
    local_primes: list[int] | None  # shard-local witness subset, or None


class SegmentStore:
    """An append-only segment chain plus its fsynced manifest, in one dir."""

    def __init__(
        self,
        root: pathlib.Path,
        plan: bytes,
        records: list[SegmentRecord],
        ads_value: int,
        warm: SegmentRecord | None,
    ) -> None:
        self.root = root
        self.plan = plan
        self._records = records
        self._ads_value = ads_value
        self._warm = warm

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def create(cls, path: str | pathlib.Path, plan: bytes = SINGLE_PLAN) -> "SegmentStore":
        """Initialise an empty store at ``path`` (directory created if needed).

        Refuses a directory that already holds a manifest: a store is an
        authoritative history, and silently re-initialising one would orphan
        every committed segment.
        """
        root = pathlib.Path(path)
        root.mkdir(parents=True, exist_ok=True)
        if (root / MANIFEST_NAME).exists():
            raise StateError(
                f"segment store already exists at {root}; open() it instead"
            )
        store = cls(root, plan, [], 0, None)
        store._write_manifest()
        return store

    @classmethod
    def open(cls, path: str | pathlib.Path, plan: bytes | None = None) -> "SegmentStore":
        """Open an existing store: validate the manifest, clean the torn tail.

        ``plan`` (when given) must match the fingerprint recorded at
        :meth:`create` time — a shard reopening another shard's store (or a
        tier of a different width) is refused before any segment is read.
        """
        root = pathlib.Path(path)
        manifest_path = root / MANIFEST_NAME
        try:
            blob = manifest_path.read_bytes()
        except FileNotFoundError as exc:
            raise StateError(f"no segment store at {root}") from exc
        except OSError as exc:
            raise StateError(f"cannot read segment manifest {manifest_path}: {exc}") from exc
        try:
            parts = codec.unpack(blob, _KIND_MANIFEST)
        except (ParameterError, ValueError) as exc:
            raise StateError(f"corrupt segment manifest at {manifest_path}: {exc}") from exc
        if len(parts) < 3:
            raise StateError(f"corrupt segment manifest at {manifest_path}: too few fields")
        stored_plan, ads_blob, warm_blob, *seg_blobs = parts
        if plan is not None and stored_plan != plan:
            raise StateError(
                f"segment store plan mismatch at {root}: "
                f"store records {stored_plan!r}, caller expects {plan!r}"
            )
        records = []
        for seg_blob in seg_blobs:
            try:
                name, length, digest = codec.decode_parts(seg_blob)
            except (ParameterError, ValueError) as exc:
                raise StateError(
                    f"corrupt segment record in manifest at {manifest_path}: {exc}"
                ) from exc
            records.append(
                SegmentRecord(name.decode("ascii"), codec.decode_int(length), digest)
            )
        warm: SegmentRecord | None = None
        if warm_blob:
            try:
                wname, wlength, wdigest = codec.decode_parts(warm_blob)
            except (ParameterError, ValueError) as exc:
                raise StateError(
                    f"corrupt warm record in manifest at {manifest_path}: {exc}"
                ) from exc
            warm = SegmentRecord(wname.decode("ascii"), codec.decode_int(wlength), wdigest)
        store = cls(root, stored_plan, records, codec.decode_int(ads_blob), warm)
        store._truncate_torn_tail()
        return store

    def _truncate_torn_tail(self) -> None:
        """Delete segment files beyond the manifest's chain (uncommitted).

        A crash between segment write and manifest swap leaves the new file
        on disk with no manifest entry: the install never committed, the
        idempotent owner re-sends it, and keeping the orphan would collide
        with the re-send's sequence number.  Listed segments are *not*
        checked here — they verify lazily on first replay.
        """
        listed = {record.name for record in self._records}
        removed = 0
        for seg_path in sorted(self.root.glob("seg-*.slcr")):
            if seg_path.name not in listed:
                seg_path.unlink()
                removed += 1
        if removed:
            perfstats.incr("segstore.tail_truncated", removed)
            fsync_dir(self.root)
        # A warm checkpoint written before a crash mid-swap may disagree
        # with the manifest; digest validation happens in read_warm().
        if self._warm is None and (self.root / WARM_NAME).exists():
            (self.root / WARM_NAME).unlink()
            fsync_dir(self.root)

    # --------------------------------------------------------------- append

    @property
    def ads_value(self) -> int:
        return self._ads_value

    @property
    def segment_count(self) -> int:
        return len(self._records)

    def append(
        self,
        entries: dict[bytes, bytes],
        primes: list[int],
        ads_value: int,
        local_primes: list[int] | None = None,
    ) -> int:
        """Commit one install delta as an immutable segment; returns its seq.

        Write order is the commit protocol: segment file + fsync, directory
        fsync (the file's existence is durable), then the atomic manifest
        swap (the commit point).  A crash before the swap leaves a torn
        tail; after it, the install is durable.
        """
        seq = len(self._records)
        local_blob = (
            b"" if local_primes is None
            else codec.encode_parts(*[codec.encode_int(p) for p in local_primes])
        )
        blob = codec.pack(
            _KIND_SEGMENT,
            codec.encode_int(seq),
            codec.encode_mapping(entries),
            codec.encode_parts(*[codec.encode_int(p) for p in primes]),
            codec.encode_int(ads_value),
            b"\x01" + local_blob if local_primes is not None else b"",
        )
        name = _segment_name(seq)
        seg_path = self.root / name
        with open(seg_path, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        fsync_dir(self.root)
        self._records.append(SegmentRecord(name, len(blob), hashlib.sha256(blob).digest()))
        self._ads_value = ads_value
        self._write_manifest()
        perfstats.incr("segstore.appends")
        return seq

    def _write_manifest(self) -> None:
        warm_blob = b""
        if self._warm is not None:
            warm_blob = codec.encode_parts(
                self._warm.name.encode("ascii"),
                codec.encode_int(self._warm.length),
                self._warm.digest,
            )
        blob = codec.pack(
            _KIND_MANIFEST,
            self.plan,
            codec.encode_int(self._ads_value),
            warm_blob,
            *[
                codec.encode_parts(
                    record.name.encode("ascii"),
                    codec.encode_int(record.length),
                    record.digest,
                )
                for record in self._records
            ],
        )
        save(self.root / MANIFEST_NAME, blob)

    # --------------------------------------------------------------- replay

    def _read_segment_file(self, record: SegmentRecord) -> bytes:
        path = self.root / record.name
        try:
            with open(path, "rb") as handle:
                try:
                    with mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ) as view:
                        blob = bytes(view)
                except (ValueError, OSError):
                    blob = handle.read()  # empty or unmappable file
        except FileNotFoundError as exc:
            raise StateError(
                f"segment store at {self.root} is corrupt: "
                f"manifest lists {record.name} but the file is missing"
            ) from exc
        except OSError as exc:
            raise StateError(f"cannot read segment {path}: {exc}") from exc
        if len(blob) != record.length or hashlib.sha256(blob).digest() != record.digest:
            raise StateError(
                f"segment store at {self.root} is corrupt: "
                f"{record.name} failed its content digest (interior corruption)"
            )
        return blob

    def replay(self) -> Iterator[Segment]:
        """Yield every committed segment in order, digest-verified lazily."""
        for seq, record in enumerate(self._records):
            blob = self._read_segment_file(record)
            try:
                seq_blob, mapping, primes_blob, ads_blob, local_blob = codec.unpack(
                    blob, _KIND_SEGMENT
                )
                if codec.decode_int(seq_blob) != seq:
                    raise ParameterError(
                        f"segment {record.name} carries sequence "
                        f"{codec.decode_int(seq_blob)}, expected {seq}"
                    )
                entries = codec.decode_mapping(mapping)
                primes = [codec.decode_int(p) for p in codec.decode_parts(primes_blob)]
                local: list[int] | None = None
                if local_blob:
                    local = [
                        codec.decode_int(p)
                        for p in codec.decode_parts(local_blob[1:])
                    ]
            except (ParameterError, ValueError) as exc:
                raise StateError(
                    f"segment store at {self.root} is corrupt: "
                    f"cannot decode {record.name}: {exc}"
                ) from exc
            perfstats.incr("segstore.segments_replayed")
            yield Segment(seq, entries, primes, codec.decode_int(ads_blob), local)

    # ----------------------------------------------------- warm checkpoints

    def write_warm(self, blob: bytes) -> None:
        """Persist a warm-restart checkpoint and record it in the manifest."""
        framed = codec.pack(_KIND_WARM, blob)
        path = self.root / WARM_NAME
        with open(path, "wb") as handle:
            handle.write(framed)
            handle.flush()
            os.fsync(handle.fileno())
        fsync_dir(self.root)
        self._warm = SegmentRecord(WARM_NAME, len(framed), hashlib.sha256(framed).digest())
        self._write_manifest()
        perfstats.incr("segstore.warm.written")

    def read_warm(self) -> bytes | None:
        """The last checkpoint's payload, or None when absent/invalid.

        The checkpoint is an accelerator, never a source of truth: any
        mismatch (missing file, manifest digest disagreement, codec
        failure) degrades to None — a cold rebuild — instead of raising.
        """
        if self._warm is None:
            return None
        path = self.root / self._warm.name
        try:
            framed = path.read_bytes()
        except OSError:
            perfstats.incr("segstore.warm.invalid")
            return None
        if (
            len(framed) != self._warm.length
            or hashlib.sha256(framed).digest() != self._warm.digest
        ):
            perfstats.incr("segstore.warm.invalid")
            return None
        try:
            (payload,) = codec.unpack(framed, _KIND_WARM)
        except (ParameterError, ValueError):
            perfstats.incr("segstore.warm.invalid")
            return None
        return payload


# ------------------------------------------------------- warm-state payload


class WarmState(NamedTuple):
    """A decoded warm-restart checkpoint.

    ``ads_value`` / ``primes_digest`` / ``index_digest`` stamp the exact
    state the caches were computed against; a reopening cloud compares them
    to its replayed state and discards the checkpoint on any mismatch.
    Collections preserve insertion order — the entry cache and kernel memos
    evict FIFO by dict order, so rehydration must not re-sort them.
    """

    ads_value: int
    primes_digest: bytes
    index_digest: bytes
    #: ``[(node_key, (entries tuple, suffix_hash, next_trapdoor|None)), ...]``
    entry_nodes: list[tuple[bytes, tuple[tuple[bytes, ...], int, bytes | None]]]
    witness_cache: dict[int, int] | None
    repeat_cache: dict[tuple[int, ...], dict[int, int]]
    trapdoor_items: list[tuple[bytes, bytes]]
    hash_items: list[tuple[bytes, tuple[int, int]]]


def _encode_optional(value: bytes | None) -> bytes:
    return b"" if value is None else b"\x01" + value


def _decode_optional(blob: bytes) -> bytes | None:
    return None if not blob else blob[1:]


def pack_warm_state(
    ads_value: int,
    primes_dig: bytes,
    index_dig: bytes,
    entry_nodes,
    witness_cache: dict[int, int] | None,
    repeat_cache: dict[tuple[int, ...], dict[int, int]],
    trapdoor_items,
    hash_items,
) -> bytes:
    """Serialize one warm checkpoint (inverse of :func:`unpack_warm_state`)."""

    def _witness_map(items) -> bytes:
        return encode_parts(
            *[
                encode_parts(codec.encode_int(p), codec.encode_int(w))
                for p, w in items
            ]
        )

    nodes_blob = encode_parts(
        *[
            encode_parts(
                key,
                encode_parts(*entries),
                codec.encode_int(suffix_hash),
                _encode_optional(next_trapdoor),
            )
            for key, (entries, suffix_hash, next_trapdoor) in entry_nodes
        ]
    )
    witness_blob = (
        b"" if witness_cache is None
        else b"\x01" + _witness_map(witness_cache.items())
    )
    repeat_blob = encode_parts(
        *[
            encode_parts(
                encode_parts(*[codec.encode_int(p) for p in subset]),
                _witness_map(witnesses.items()),
            )
            for subset, witnesses in repeat_cache.items()
        ]
    )
    trapdoor_blob = encode_parts(
        *[encode_parts(t, image) for t, image in trapdoor_items]
    )
    hash_blob = encode_parts(
        *[
            encode_parts(data, codec.encode_int(prime), codec.encode_int(counter))
            for data, (prime, counter) in hash_items
        ]
    )
    return encode_parts(
        codec.encode_int(ads_value),
        primes_dig,
        index_dig,
        nodes_blob,
        witness_blob,
        repeat_blob,
        trapdoor_blob,
        hash_blob,
    )


def unpack_warm_state(blob: bytes) -> WarmState:
    """Decode a warm checkpoint; raises ``ParameterError``/``ValueError`` on
    malformed input (callers treat that as a stale checkpoint)."""
    from ..common.encoding import decode_parts

    (
        ads_blob, primes_dig, index_dig,
        nodes_blob, witness_blob, repeat_blob, trapdoor_blob, hash_blob,
    ) = decode_parts(blob)

    def _witness_map(packed: bytes) -> dict[int, int]:
        out: dict[int, int] = {}
        for item in decode_parts(packed):
            p, w = decode_parts(item)
            out[codec.decode_int(p)] = codec.decode_int(w)
        return out

    entry_nodes = []
    for packed in decode_parts(nodes_blob):
        key, entries_blob, suffix_blob, next_blob = decode_parts(packed)
        entry_nodes.append(
            (
                key,
                (
                    tuple(decode_parts(entries_blob)),
                    codec.decode_int(suffix_blob),
                    _decode_optional(next_blob),
                ),
            )
        )
    witness_cache = None if not witness_blob else _witness_map(witness_blob[1:])
    repeat_cache: dict[tuple[int, ...], dict[int, int]] = {}
    for packed in decode_parts(repeat_blob):
        subset_blob, witnesses_blob = decode_parts(packed)
        subset = tuple(codec.decode_int(p) for p in decode_parts(subset_blob))
        repeat_cache[subset] = _witness_map(witnesses_blob)
    trapdoor_items = [
        tuple(decode_parts(packed)) for packed in decode_parts(trapdoor_blob)
    ]
    hash_items = []
    for packed in decode_parts(hash_blob):
        data, prime, counter = decode_parts(packed)
        hash_items.append((data, (codec.decode_int(prime), codec.decode_int(counter))))
    return WarmState(
        codec.decode_int(ads_blob),
        primes_dig,
        index_dig,
        entry_nodes,
        witness_cache,
        repeat_cache,
        trapdoor_items,  # type: ignore[arg-type]
        hash_items,
    )
