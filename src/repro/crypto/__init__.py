"""Cryptographic primitives built from scratch for the Slicer reproduction.

Everything here is implemented on the standard library (``hashlib``/``hmac``
plus big-integer arithmetic); AES is used for the record cipher when the
``cryptography`` package is available, with a pure-stdlib fallback.
"""

from .accumulator import (
    Accumulator,
    AccumulatorParams,
    MembershipWitness,
    NonMembershipWitness,
    verify_membership,
    verify_nonmembership,
)
from .hash_to_prime import DEFAULT_PRIME_BITS, HashToPrime
from .merkle import MerkleProof, MerkleTree, verify_merkle
from .multiset_hash import DEFAULT_FIELD_PRIME, MultisetHash
from .prf import PRF, derive_key, prf
from .primes import is_prime, next_prime, random_prime, random_safe_prime
from .symmetric import SymmetricCipher
from .trapdoor import TrapdoorKeyPair, TrapdoorPublicKey

__all__ = [
    "Accumulator",
    "AccumulatorParams",
    "DEFAULT_FIELD_PRIME",
    "DEFAULT_PRIME_BITS",
    "HashToPrime",
    "MembershipWitness",
    "MerkleProof",
    "MerkleTree",
    "MultisetHash",
    "NonMembershipWitness",
    "PRF",
    "SymmetricCipher",
    "TrapdoorKeyPair",
    "TrapdoorPublicKey",
    "derive_key",
    "is_prime",
    "next_prime",
    "prf",
    "random_prime",
    "random_safe_prime",
    "verify_membership",
    "verify_merkle",
    "verify_nonmembership",
]
