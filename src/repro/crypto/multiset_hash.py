"""MSet-Mu-Hash incremental multiset hash (Clarke et al., ASIACRYPT 2003).

The paper verifies result *sets* by hashing them with a multiset hash
``H(M) = prod_{b in M} H(b)^{M_b}`` over a finite field ``GF(q)``, which is
multiset-collision-resistant under discrete log.  The two properties the
protocol needs (paper Section III.B):

* ``H(M) == H(M)``   — equality is plain field-element equality, and
* ``H(M ∪ N) == H(M) (+_H) H(N)`` — the combine operator is field
  multiplication, which makes the hash *incremental*: Algorithm 1 line 15
  folds each new encrypted record into the running hash in O(1).

Hash values are field elements; the empty multiset hashes to 1 (``H(φ)``).
"""

from __future__ import annotations

import hashlib

from ..common.errors import ParameterError
from . import modmath

# A fixed 256-bit prime field modulus (2^256 - 189, the largest 256-bit prime).
DEFAULT_FIELD_PRIME = 2**256 - 189


class MultisetHash:
    """Multiplicative multiset hash over ``GF(q)``.

    Instances are *values*: immutable field elements supporting ``+`` as the
    multiset-union combine, ``-`` as multiset difference (field division,
    used by the dual-instance deletion extension) and ``==``.
    """

    __slots__ = ("value", "q")

    def __init__(self, value: int = 1, q: int = DEFAULT_FIELD_PRIME) -> None:
        if not 0 < value < q:
            raise ParameterError("multiset hash value out of field range")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "q", q)

    def __setattr__(self, *_: object) -> None:  # pragma: no cover
        raise AttributeError("MultisetHash values are immutable")

    @classmethod
    def empty(cls, q: int = DEFAULT_FIELD_PRIME) -> "MultisetHash":
        """``H(φ)`` — the hash of the empty multiset."""
        return cls(1, q)

    @classmethod
    def _element_hash(cls, element: bytes, q: int) -> int:
        """Poly-random map of one element into ``GF(q)* `` (never 0 or ...)."""
        counter = 0
        while True:
            digest = hashlib.sha256(
                b"MSetMuHash" + counter.to_bytes(4, "big") + element
            ).digest()
            wide = int.from_bytes(digest + hashlib.sha256(digest).digest(), "big")
            h = wide % q
            if h != 0:
                return h
            counter += 1  # pragma: no cover - probability ~2^-256

    @classmethod
    def of(cls, elements: list[bytes] | tuple[bytes, ...], q: int = DEFAULT_FIELD_PRIME) -> "MultisetHash":
        """Hash a whole multiset of byte strings."""
        return cls(
            modmath.product_mod([cls._element_hash(element, q) for element in elements], q),
            q,
        )

    @classmethod
    def of_one(cls, element: bytes, q: int = DEFAULT_FIELD_PRIME) -> "MultisetHash":
        """Hash the singleton multiset {element}."""
        return cls(cls._element_hash(element, q), q)

    def add(self, element: bytes) -> "MultisetHash":
        """Return the hash of this multiset with ``element`` added once."""
        return MultisetHash((self.value * self._element_hash(element, self.q)) % self.q, self.q)

    def combine(self, other: "MultisetHash") -> "MultisetHash":
        """``+_H``: hash of the multiset union."""
        self._check_field(other)
        return MultisetHash((self.value * other.value) % self.q, self.q)

    def remove(self, other: "MultisetHash") -> "MultisetHash":
        """Hash of the multiset difference (field division).

        Only meaningful when ``other``'s multiset is contained in ours; the
        deletion extension (paper Section V.F) relies on this.
        """
        self._check_field(other)
        return MultisetHash((self.value * modmath.invert(other.value, self.q)) % self.q, self.q)

    def _check_field(self, other: "MultisetHash") -> None:
        if self.q != other.q:
            raise ParameterError("cannot combine hashes from different fields")

    def __add__(self, other: "MultisetHash") -> "MultisetHash":
        return self.combine(other)

    def __sub__(self, other: "MultisetHash") -> "MultisetHash":
        return self.remove(other)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MultisetHash) and self.q == other.q and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.value, self.q))

    def to_bytes(self) -> bytes:
        """Canonical fixed-width encoding (feeds ``H_prime`` and wire sizes)."""
        width = (self.q.bit_length() + 7) // 8
        return self.value.to_bytes(width, "big")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MultisetHash(0x{self.value:x})"


def element_hash(element: bytes, q: int = DEFAULT_FIELD_PRIME) -> int:
    """The ``GF(q)*`` image of one element — the per-element factor of the hash.

    Exposed for incremental folds that carry raw field values instead of
    :class:`MultisetHash` instances (e.g. the cloud's epoch-suffix cache,
    which multiplies fresh entries onto a cached suffix value):
    ``H(M).value == prod(element_hash(b) for b in M) mod q``.
    """
    return MultisetHash._element_hash(element, q)
