"""Modular arithmetic helpers used by the accumulator and trapdoor permutation.

Pluggable backend layer
-----------------------

Every modexp/inverse/gcd in the crypto hot loop routes through a *backend*
object so a native bignum library can be swapped in without touching call
sites.  Two backends exist:

* ``python`` (default) — CPython's built-in ``pow``/``math.gcd``.  Always
  available; the byte-identity property tests run against it.
* ``gmpy2`` — GMP-backed ``powmod``/``invert``/``gcd``, selected with
  ``REPRO_MODMATH=gmpy2``.  Import-guarded: when gmpy2 is not installed the
  registry silently falls back to pure python (recorded in
  :func:`backend_info` and the ``modmath.backend.fallback`` counter), so the
  repo never *requires* a native dependency.

Backends are an execution knob, never a protocol input: both produce
bit-identical integers for every operation (GMP and CPython both implement
exact integer arithmetic), which the property suite in
``tests/properties/test_prop_modmath.py`` enforces end to end.  All state
that crosses process or cache boundaries stays plain ``int``; backends wrap
operands locally inside hot loops only.
"""

from __future__ import annotations

import math
import os

from ..common.errors import ParameterError
from ..common import perfstats

MODMATH_ENV = "REPRO_MODMATH"

try:  # pragma: no cover - exercised only on the gmpy2 CI leg
    import gmpy2 as _gmpy2
except ImportError:  # default: container has no native bignum library
    _gmpy2 = None


class ModmathBackend:
    """One bignum implementation: wrap/unwrap plus the four hot operations.

    ``wrap``/``unwrap`` convert between plain ``int`` and the backend's
    native integer type (identity for python).  Hot loops wrap operands once
    at entry so operator overloading stays native inside the loop, and unwrap
    results before they escape — persisted values are always plain ``int``.
    """

    __slots__ = ("name", "native", "wrap", "unwrap", "powmod", "invert", "gcd", "mul")

    def __init__(self, name, native, wrap, unwrap, powmod, invert, gcd, mul):
        self.name = name
        self.native = native
        self.wrap = wrap
        self.unwrap = unwrap
        self.powmod = powmod
        self.invert = invert
        self.gcd = gcd
        self.mul = mul


def _python_invert(a: int, n: int) -> int:
    return pow(a, -1, n)  # raises ValueError when not invertible


_PYTHON_BACKEND = ModmathBackend(
    name="python",
    native=False,
    wrap=lambda x: x,
    unwrap=lambda x: x,
    powmod=pow,
    invert=_python_invert,
    gcd=math.gcd,
    mul=lambda a, b: a * b,
)


def _make_gmpy2_backend() -> ModmathBackend:  # pragma: no cover - gmpy2 CI leg
    mpz = _gmpy2.mpz
    g_powmod = _gmpy2.powmod
    g_invert = _gmpy2.invert
    g_gcd = _gmpy2.gcd

    def powmod(base: int, exponent: int, modulus: int) -> int:
        return int(g_powmod(base, exponent, modulus))

    def invert(a: int, n: int) -> int:
        try:
            return int(g_invert(a, n))
        except ZeroDivisionError as exc:
            # Normalise to the ValueError pure python raises so callers see
            # one error surface regardless of backend.
            raise ValueError("base is not invertible for the given modulus") from exc

    def gcd(a: int, b: int) -> int:
        return int(g_gcd(a, b))

    def mul(a: int, b: int) -> int:
        return int(mpz(a) * b)

    return ModmathBackend(
        name="gmpy2",
        native=True,
        wrap=mpz,
        unwrap=int,
        powmod=powmod,
        invert=invert,
        gcd=gcd,
        mul=mul,
    )


_KNOWN_BACKENDS = ("python", "gmpy2")
_resolved: ModmathBackend | None = None
_override: str | None = None
_fallback_reason: str | None = None
_requested: str | None = None


def available_backends() -> list[str]:
    """Backend names importable in this interpreter."""
    names = ["python"]
    if _gmpy2 is not None:
        names.append("gmpy2")
    return names


def set_backend(name: str | None) -> None:
    """Force a backend for this process (tests/benchmarks), overriding the env.

    ``None`` clears the override and re-reads ``REPRO_MODMATH`` on next use.
    Unlike the env path, requesting an unavailable backend here raises — a
    test that *asks* for gmpy2 wants gmpy2, not a silent fallback.
    """
    global _override, _resolved, _fallback_reason, _requested
    if name is not None:
        if name not in _KNOWN_BACKENDS:
            raise ParameterError(f"unknown modmath backend {name!r}")
        if name == "gmpy2" and _gmpy2 is None:
            raise ParameterError("gmpy2 backend requested but gmpy2 is not installed")
    _override = name
    _resolved = None
    _fallback_reason = None
    _requested = None


def active_backend() -> ModmathBackend:
    """Resolve the active backend (override > env > python), cached."""
    global _resolved, _fallback_reason, _requested
    if _resolved is not None:
        return _resolved
    requested = _override if _override is not None else os.environ.get(MODMATH_ENV, "python")
    requested = (requested or "python").strip().lower()
    _requested = requested
    _fallback_reason = None
    if requested in ("", "python", "pure", "default"):
        _resolved = _PYTHON_BACKEND
    elif requested == "gmpy2":
        if _gmpy2 is None:
            _fallback_reason = "gmpy2 not installed"
            perfstats.STATS.incr("modmath.backend.fallback")
            _resolved = _PYTHON_BACKEND
        else:  # pragma: no cover - gmpy2 CI leg
            _resolved = _make_gmpy2_backend()
    else:
        raise ParameterError(
            f"unknown {MODMATH_ENV} value {requested!r}; expected one of {_KNOWN_BACKENDS}"
        )
    perfstats.STATS.incr(f"modmath.backend.{_resolved.name}")
    return _resolved


def backend_info() -> dict[str, str | None]:
    """Resolution record for reports: active name, requested name, fallback."""
    backend = active_backend()
    return {
        "active": backend.name,
        "requested": _requested,
        "fallback_reason": _fallback_reason,
        "available": ",".join(available_backends()),
    }


def powmod(base: int, exponent: int, modulus: int) -> int:
    """``base ** exponent mod modulus`` on the active backend."""
    return active_backend().powmod(base, exponent, modulus)


def invert(a: int, n: int) -> int:
    """``a^{-1} mod n`` on the active backend; ``ValueError`` when not invertible."""
    return active_backend().invert(a, n)


def gcd(a: int, b: int) -> int:
    return active_backend().gcd(a, b)


def mod_inverse(a: int, n: int) -> int:
    """Return ``a^{-1} mod n``; raises :class:`ParameterError` if it does not exist."""
    if n <= 0:
        raise ParameterError("modulus must be positive")
    try:
        return active_backend().invert(a, n)
    except ValueError as exc:
        raise ParameterError(f"{a} is not invertible modulo {n}") from exc


def crt_pair(r_p: int, p: int, r_q: int, q: int) -> int:
    """Chinese-remainder combine of two residues with coprime moduli.

    Returns the unique ``x mod p*q`` with ``x ≡ r_p (mod p)`` and
    ``x ≡ r_q (mod q)``.  Used to speed up RSA private operations.
    """
    if gcd(p, q) != 1:
        raise ParameterError("CRT moduli must be coprime")
    q_inv = mod_inverse(q, p)
    h = (q_inv * (r_p - r_q)) % p
    return (r_q + h * q) % (p * q)


def is_quadratic_residue(a: int, p: int) -> bool:
    """Euler criterion for an odd prime modulus ``p``."""
    if p < 3 or p % 2 == 0:
        raise ParameterError("Euler criterion needs an odd prime")
    a %= p
    if a == 0:
        return True
    return powmod(a, (p - 1) // 2, p) == 1


def product_mod(values: list[int], modulus: int) -> int:
    """Product of ``values`` reduced mod ``modulus`` (streaming, no bignum blowup)."""
    backend = active_backend()
    acc = backend.wrap(1)
    modulus = backend.wrap(modulus)
    for v in values:
        acc = (acc * v) % modulus
    return backend.unwrap(acc)


def product(values: list[int]) -> int:
    """Exact integer product via balanced multiplication (fast for many primes).

    The RSA accumulator exponent ``x_p = prod(X)`` can involve tens of
    thousands of 256-bit primes; a naive left fold is quadratic in the output
    size, while this divide-and-conquer tree keeps operands balanced.

    This is the *one* shared balanced-product helper; the accumulator's
    root-factor recursion and the cloud's batched witness generation all
    route through it (or :class:`ProductTree` for incremental sets).
    """
    if not values:
        return 1
    backend = active_backend()
    layer = [backend.wrap(v) for v in values] if backend.native else list(values)
    while len(layer) > 1:
        nxt = [layer[i] * layer[i + 1] for i in range(0, len(layer) - 1, 2)]
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    return backend.unwrap(layer[0])


class ProductTree:
    """Incrementally maintained balanced product over a growing value list.

    The cloud's witness generation needs ``prod(X)`` for the *current* prime
    list on every query; recomputing it is ``O(|X|^2)`` bit work over a
    session, and the seed code's running product (multiply one prime at a
    time) is no better asymptotically.  This structure keeps a binary-counter
    forest of subtree products (one per set bit of ``len(values)``), so

    * appending ``k`` values costs ``O(k log k)`` amortised bit operations
      (equal-size subtrees merge like a carry chain), and
    * the full product is one cached ``O(log n)``-operand balanced multiply,
      invalidated only when values are appended.

    Values are never removed — matching the accumulator's append-only prime
    list (Slicer deletes via a second instance, not removal).

    Forest state is stored as plain ``int`` (the tree is pickled into worker
    processes and kernel cache exports); subtree merges go through the active
    backend's multiplier so large carries benefit from native bignums.
    """

    __slots__ = ("_forest", "_count", "_root")

    def __init__(self, values: list[int] | None = None) -> None:
        self._forest: list[tuple[int, int]] = []  # (leaf count, subtree product)
        self._count = 0
        self._root: int | None = None
        if values:
            self.extend(values)

    def append(self, value: int) -> None:
        """Absorb one value (amortised ``O(log n)`` subtree merges)."""
        mul = active_backend().mul
        self._forest.append((1, value))
        self._count += 1
        self._root = None
        while len(self._forest) >= 2 and self._forest[-1][0] == self._forest[-2][0]:
            size_b, prod_b = self._forest.pop()
            size_a, prod_a = self._forest.pop()
            self._forest.append((size_a + size_b, mul(prod_a, prod_b)))

    def extend(self, values: list[int]) -> None:
        for value in values:
            self.append(value)

    def __len__(self) -> int:
        return self._count

    @property
    def root(self) -> int:
        """The exact product of every appended value (1 when empty), cached."""
        if self._root is None:
            self._root = product([prod for _, prod in self._forest])
        return self._root
