"""Modular arithmetic helpers used by the accumulator and trapdoor permutation."""

from __future__ import annotations

from math import gcd

from ..common.errors import ParameterError


def mod_inverse(a: int, n: int) -> int:
    """Return ``a^{-1} mod n``; raises if the inverse does not exist."""
    if n <= 0:
        raise ParameterError("modulus must be positive")
    try:
        return pow(a, -1, n)
    except ValueError as exc:  # pragma: no cover - message normalisation
        raise ParameterError(f"{a} is not invertible modulo {n}") from exc


def crt_pair(r_p: int, p: int, r_q: int, q: int) -> int:
    """Chinese-remainder combine of two residues with coprime moduli.

    Returns the unique ``x mod p*q`` with ``x ≡ r_p (mod p)`` and
    ``x ≡ r_q (mod q)``.  Used to speed up RSA private operations.
    """
    if gcd(p, q) != 1:
        raise ParameterError("CRT moduli must be coprime")
    q_inv = mod_inverse(q, p)
    h = (q_inv * (r_p - r_q)) % p
    return (r_q + h * q) % (p * q)


def is_quadratic_residue(a: int, p: int) -> bool:
    """Euler criterion for an odd prime modulus ``p``."""
    if p < 3 or p % 2 == 0:
        raise ParameterError("Euler criterion needs an odd prime")
    a %= p
    if a == 0:
        return True
    return pow(a, (p - 1) // 2, p) == 1


def product_mod(values: list[int], modulus: int) -> int:
    """Product of ``values`` reduced mod ``modulus`` (streaming, no bignum blowup)."""
    acc = 1
    for v in values:
        acc = (acc * v) % modulus
    return acc


def product(values: list[int]) -> int:
    """Exact integer product via balanced multiplication (fast for many primes).

    The RSA accumulator exponent ``x_p = prod(X)`` can involve tens of
    thousands of 256-bit primes; a naive left fold is quadratic in the output
    size, while this divide-and-conquer tree keeps operands balanced.

    This is the *one* shared balanced-product helper; the accumulator's
    root-factor recursion and the cloud's batched witness generation all
    route through it (or :class:`ProductTree` for incremental sets).
    """
    if not values:
        return 1
    layer = list(values)
    while len(layer) > 1:
        nxt = [layer[i] * layer[i + 1] for i in range(0, len(layer) - 1, 2)]
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    return layer[0]


class ProductTree:
    """Incrementally maintained balanced product over a growing value list.

    The cloud's witness generation needs ``prod(X)`` for the *current* prime
    list on every query; recomputing it is ``O(|X|^2)`` bit work over a
    session, and the seed code's running product (multiply one prime at a
    time) is no better asymptotically.  This structure keeps a binary-counter
    forest of subtree products (one per set bit of ``len(values)``), so

    * appending ``k`` values costs ``O(k log k)`` amortised bit operations
      (equal-size subtrees merge like a carry chain), and
    * the full product is one cached ``O(log n)``-operand balanced multiply,
      invalidated only when values are appended.

    Values are never removed — matching the accumulator's append-only prime
    list (Slicer deletes via a second instance, not removal).
    """

    __slots__ = ("_forest", "_count", "_root")

    def __init__(self, values: list[int] | None = None) -> None:
        self._forest: list[tuple[int, int]] = []  # (leaf count, subtree product)
        self._count = 0
        self._root: int | None = None
        if values:
            self.extend(values)

    def append(self, value: int) -> None:
        """Absorb one value (amortised ``O(log n)`` subtree merges)."""
        self._forest.append((1, value))
        self._count += 1
        self._root = None
        while len(self._forest) >= 2 and self._forest[-1][0] == self._forest[-2][0]:
            size_b, prod_b = self._forest.pop()
            size_a, prod_a = self._forest.pop()
            self._forest.append((size_a + size_b, prod_a * prod_b))

    def extend(self, values: list[int]) -> None:
        for value in values:
            self.append(value)

    def __len__(self) -> int:
        return self._count

    @property
    def root(self) -> int:
        """The exact product of every appended value (1 when empty), cached."""
        if self._root is None:
            self._root = product([prod for _, prod in self._forest])
        return self._root
