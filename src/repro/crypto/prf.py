"""Pseudo-random functions.

The paper instantiates its PRFs ``F`` and ``G`` with HMAC-128.  We use
HMAC-SHA256 truncated to a configurable output length (16 bytes by default,
matching HMAC-128's security level) and expose:

* :class:`PRF` — the keyed function itself.
* :func:`derive_key` — KDF-style subkey derivation so one master key ``K``
  can yield the per-keyword keys ``G1 = G(K, w||1)`` and ``G2 = G(K, w||2)``.

One key, one key schedule: HMAC's inner/outer key-pad blocks depend only on
the key, so each :class:`PRF` hashes them once at construction and every
evaluation works on a ``copy()`` of that pre-keyed state.  For the short
messages the index uses (labels, pads, SORE slices) this removes two of the
~five SHA-256 compressions per call — the batched-PRF kernel the hot paths
lean on (one key schedule, *b* evaluations per SORE slice set).
"""

from __future__ import annotations

import hashlib
import hmac

from ..common.encoding import encode_parts
from ..common.errors import ParameterError

DEFAULT_OUTPUT_LEN = 16  # bytes; HMAC-128 as in the paper's prototype.
KEY_LEN = 16


class PRF:
    """HMAC-based PRF ``F_k : bytes -> {0,1}^(8*output_len)``."""

    def __init__(self, key: bytes, output_len: int = DEFAULT_OUTPUT_LEN) -> None:
        if not key:
            raise ParameterError("PRF key must be non-empty")
        if not 1 <= output_len <= hashlib.sha256().digest_size:
            raise ParameterError(f"output_len must be in [1, 32], got {output_len}")
        self._key = key
        #: Pre-keyed HMAC state; every eval copies it instead of re-running
        #: the key schedule.  ``hmac.new(k, m).digest()`` and
        #: ``hmac.new(k).copy(); update(m)`` are the same function.
        self._proto = hmac.new(key, digestmod=hashlib.sha256)
        self.output_len = output_len

    def eval(self, *parts: bytes) -> bytes:
        """Evaluate the PRF on the injective encoding of ``parts``."""
        mac = self._proto.copy()
        mac.update(encode_parts(*parts))
        return mac.digest()[: self.output_len]

    def eval_many(self, messages: list[bytes]) -> list[bytes]:
        """Batch evaluation over pre-encoded single-part messages.

        One key schedule (already amortised in ``__init__``), ``len(messages)``
        evaluations — the SORE layer feeds all *b* slice encodings of a value
        through this in one call.
        """
        proto = self._proto
        out_len = self.output_len
        out: list[bytes] = []
        for message in messages:
            mac = proto.copy()
            mac.update(encode_parts(message))
            out.append(mac.digest()[:out_len])
        return out

    def eval_int(self, *parts: bytes) -> int:
        """PRF output interpreted as a big-endian integer (for index labels)."""
        return int.from_bytes(self.eval(*parts), "big")

    def eval_stream(self, length: int, *parts: bytes) -> bytes:
        """Variable-length PRF output via counter mode over the base PRF.

        The index payload ``d = F(G2, t||c) XOR Enc(K_R, R)`` needs a pad as
        long as the record ciphertext, which exceeds one HMAC block; counter
        expansion keeps this a PRF on ``(parts, counter)`` pairs.
        """
        if length < 0:
            raise ParameterError("keystream length must be non-negative")
        message = encode_parts(*parts)
        blocks = []
        produced = 0
        counter = 0
        while produced < length:
            mac = self._proto.copy()
            mac.update(counter.to_bytes(8, "big") + message)
            block = mac.digest()
            blocks.append(block)
            produced += len(block)
            counter += 1
        return b"".join(blocks)[:length]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PRF(output_len={self.output_len})"


def prf(key: bytes, *parts: bytes, output_len: int = DEFAULT_OUTPUT_LEN) -> bytes:
    """One-shot PRF evaluation; convenience wrapper over :class:`PRF`."""
    return PRF(key, output_len).eval(*parts)


def derive_key(master: bytes, *labels: bytes, output_len: int = KEY_LEN) -> bytes:
    """Derive a subkey from ``master`` bound to ``labels``.

    This is the paper's ``G(K, w||1)`` / ``G(K, w||2)`` pattern: the derived
    value both hides ``w`` and serves as the key for the index PRF ``F``.
    """
    return prf(master, *labels, output_len=output_len)
