"""Pseudo-random functions.

The paper instantiates its PRFs ``F`` and ``G`` with HMAC-128.  We use
HMAC-SHA256 truncated to a configurable output length (16 bytes by default,
matching HMAC-128's security level) and expose:

* :class:`PRF` — the keyed function itself.
* :func:`derive_key` — KDF-style subkey derivation so one master key ``K``
  can yield the per-keyword keys ``G1 = G(K, w||1)`` and ``G2 = G(K, w||2)``.
"""

from __future__ import annotations

import hashlib
import hmac

from ..common.encoding import encode_parts
from ..common.errors import ParameterError

DEFAULT_OUTPUT_LEN = 16  # bytes; HMAC-128 as in the paper's prototype.
KEY_LEN = 16


class PRF:
    """HMAC-based PRF ``F_k : bytes -> {0,1}^(8*output_len)``."""

    def __init__(self, key: bytes, output_len: int = DEFAULT_OUTPUT_LEN) -> None:
        if not key:
            raise ParameterError("PRF key must be non-empty")
        if not 1 <= output_len <= hashlib.sha256().digest_size:
            raise ParameterError(f"output_len must be in [1, 32], got {output_len}")
        self._key = key
        self.output_len = output_len

    def eval(self, *parts: bytes) -> bytes:
        """Evaluate the PRF on the injective encoding of ``parts``."""
        message = encode_parts(*parts)
        digest = hmac.new(self._key, message, hashlib.sha256).digest()
        return digest[: self.output_len]

    def eval_int(self, *parts: bytes) -> int:
        """PRF output interpreted as a big-endian integer (for index labels)."""
        return int.from_bytes(self.eval(*parts), "big")

    def eval_stream(self, length: int, *parts: bytes) -> bytes:
        """Variable-length PRF output via counter mode over the base PRF.

        The index payload ``d = F(G2, t||c) XOR Enc(K_R, R)`` needs a pad as
        long as the record ciphertext, which exceeds one HMAC block; counter
        expansion keeps this a PRF on ``(parts, counter)`` pairs.
        """
        if length < 0:
            raise ParameterError("keystream length must be non-negative")
        message = encode_parts(*parts)
        blocks = []
        counter = 0
        while sum(len(b) for b in blocks) < length:
            blocks.append(
                hmac.new(
                    self._key, counter.to_bytes(8, "big") + message, hashlib.sha256
                ).digest()
            )
            counter += 1
        return b"".join(blocks)[:length]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PRF(output_len={self.output_len})"


def prf(key: bytes, *parts: bytes, output_len: int = DEFAULT_OUTPUT_LEN) -> bytes:
    """One-shot PRF evaluation; convenience wrapper over :class:`PRF`."""
    return PRF(key, output_len).eval(*parts)


def derive_key(master: bytes, *labels: bytes, output_len: int = KEY_LEN) -> bytes:
    """Derive a subkey from ``master`` bound to ``labels``.

    This is the paper's ``G(K, w||1)`` / ``G(K, w||2)`` pattern: the derived
    value both hides ``w`` and serves as the key for the index PRF ``F``.
    """
    return prf(master, *labels, output_len=output_len)
