"""RSA accumulator (paper Section III.B, following Li-Li-Xue [28]).

Provides constant-size set-membership proofs: the authenticated data
structure (ADS) Slicer stores on chain is a single group element
``Ac = g^{prod(X)} mod n`` over the prime-representative list ``X``; the
cloud proves a result set correct with the witness ``mw = g^{prod(X)/x}``
and the smart contract checks ``mw^x == Ac``.

Design notes
------------
* ``n = p*q`` with ``p, q`` *safe* primes and ``g`` a quadratic residue, so
  the strong-RSA assumption applies and witnesses cannot be forged.
* Safe-prime generation is slow in pure Python, so
  :meth:`AccumulatorParams.demo` returns fixed precomputed parameters for
  tests and benchmarks (clearly not for production — the factorisation is in
  the source).  :meth:`AccumulatorParams.generate` does a real trusted setup.
* The cloud does not know ``phi(n)``; its witness generation is the
  ``g^{prod(X \\ {x})}`` exponentiation.  :meth:`Accumulator.witness_all`
  computes witnesses for *every* element with the Sander-Ta-Shma /
  root-factor divide-and-conquer in ``O(|X| log |X|)`` exponentiations
  instead of ``O(|X|^2)`` — this is what makes the Fig. 5 VO-generation
  benchmark feasible at paper scale.
* Non-membership witnesses (Bezout pairs) are included because [28] is a
  *universal* accumulator; Slicer itself only needs membership, but the
  dual-instance deletion tests exercise non-membership too.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd

from ..common.errors import AccumulatorError, ParameterError
from ..common.rng import DeterministicRNG, default_rng
from . import kernels
from .modmath import mod_inverse, powmod, product
from .primes import is_prime, random_safe_prime

# Precomputed safe primes for demo/test parameter sets (generated once with
# repro's own `random_safe_prime`; see DESIGN.md Section 3).  NOT FOR
# PRODUCTION USE: the factorisation of the modulus is public here.
_DEMO_SAFE_PRIMES = {
    512: (
        0xF844257662CEC54E0B2B6B274292F92D8E2761C79BF848662092EC825ED01BAB,
        0xA252363211224274024C034527879257E2663936263F2EC0E8818B63737F276B,
    ),
    1024: (
        0xE3EC71C8976C46D8D9FD3C7A4213647D2A1E059B22FC1121995854A8A63A3CA193947B86C317A51AEA6E0E9E171D8FEE688A30036EB2268C25B80871F8860737,
        0x973ECFD4BD399D8E6274B32CACCCAD5D88C5C04A7ADCDE59DEB09C5C1E7606F15E239BA4B092CAB0097C63FB2505305F57BF9BF4C352601F6D8DBC1F3947951B,
    ),
    2048: (
        0xE68FB4A6476BA349BF96104C334CC5ED1FB0F7A70BCDB51B0BBF766A113C5E781839F3A259F396123CA39C9A8426970670F3321E51AE832F22A1C97449DA56B5EAE55CDDE013480AAC8FB7D9808BB9168B5E404E8B2416C1A988642418381723C9D11CEE2799E1788B3025B47021583A2BA2199E4A334E961C714CACC894B0AF,
        0x93A3BBDB9F901BB9361A8C17B2D19D009E10C302D4984DD9B5B5A0B495CE06755CC832C1416DDC3B633BAFCF1A41739F5FD4E055404F84FF1492930E3C7C9D211649A6B810EDC99F1FE453102FE5FDC462593FDF60722A3F50B34F8BF4A6BBFD2B11D9A8708A4630AF158A9A92A8A5D9B248D896D1F29C696E864ACE5CEEA8BB,
    ),
}


@dataclass(frozen=True)
class AccumulatorParams:
    """Public accumulator parameters ``(n, g)``.

    The optional trapdoor ``(p, q)`` is known only to the setup party; it is
    never needed by the protocol (the cloud computes witnesses from the
    prime list), but speeds up test fixtures via exponent reduction mod
    ``phi(n)``.
    """

    modulus: int
    generator: int
    p: int | None = None
    q: int | None = None

    def __post_init__(self) -> None:
        if self.modulus < 15:
            raise ParameterError("accumulator modulus too small")
        if not 1 < self.generator < self.modulus:
            raise ParameterError("generator out of range")
        if self.p is not None and self.q is not None and self.p * self.q != self.modulus:
            raise ParameterError("trapdoor does not factor the modulus")

    @property
    def bits(self) -> int:
        return self.modulus.bit_length()

    @property
    def has_trapdoor(self) -> bool:
        return self.p is not None and self.q is not None

    def phi(self) -> int:
        if not self.has_trapdoor:
            raise AccumulatorError("phi(n) requires the setup trapdoor")
        assert self.p is not None and self.q is not None
        return (self.p - 1) * (self.q - 1)

    def public(self) -> "AccumulatorParams":
        """Strip the trapdoor — what the cloud and the contract see."""
        return AccumulatorParams(self.modulus, self.generator)

    @classmethod
    def generate(
        cls, bits: int = 2048, rng: DeterministicRNG | None = None
    ) -> "AccumulatorParams":
        """Trusted setup with fresh safe primes (slow: minutes at 2048 bits)."""
        if bits < 32 or bits % 2:
            raise ParameterError("modulus bits must be even and >= 32")
        rng = rng or default_rng()
        half = bits // 2
        p = random_safe_prime(half, rng)
        q = random_safe_prime(half, rng)
        while q == p:  # pragma: no cover - astronomically unlikely
            q = random_safe_prime(half, rng)
        return cls._finish_setup(p, q, rng)

    @classmethod
    def demo(cls, bits: int = 1024, rng: DeterministicRNG | None = None) -> "AccumulatorParams":
        """Fixed precomputed parameters for tests/benchmarks (INSECURE)."""
        if bits not in _DEMO_SAFE_PRIMES:
            raise ParameterError(f"no demo parameters for {bits}-bit modulus")
        p, q = _DEMO_SAFE_PRIMES[bits]
        return cls._finish_setup(p, q, rng or default_rng(7))

    @classmethod
    def _finish_setup(cls, p: int, q: int, rng: DeterministicRNG) -> "AccumulatorParams":
        n = p * q
        # A uniform square is a quadratic residue; exclude the trivial 1.
        while True:
            a = rng.randrange(2, n - 1)
            g = pow(a, 2, n)
            if g not in (0, 1):
                return cls(n, g, p, q)


@dataclass(frozen=True)
class MembershipWitness:
    """Constant-size proof that one prime is in the accumulated set."""

    value: int

    def to_bytes(self, params: AccumulatorParams) -> bytes:
        width = (params.modulus.bit_length() + 7) // 8
        return self.value.to_bytes(width, "big")


@dataclass(frozen=True)
class NonMembershipWitness:
    """Bezout-style proof that a prime is *not* in the accumulated set."""

    a: int
    d: int


class Accumulator:
    """Mutable accumulator over a multiset-free set of primes.

    Tracks the accumulated prime set ``X`` (the paper's list the owner ships
    to the cloud) and the current value ``Ac``.  All operations are public
    computations unless the params carry a trapdoor.
    """

    def __init__(self, params: AccumulatorParams, primes: list[int] | None = None) -> None:
        self.params = params
        self._primes: dict[int, None] = {}
        self._value = params.generator % params.modulus
        if primes:
            self.add_many(primes)

    @property
    def value(self) -> int:
        """The current accumulation value ``Ac``."""
        return self._value

    @property
    def primes(self) -> list[int]:
        """The accumulated prime set, in insertion order."""
        return list(self._primes)

    def __len__(self) -> int:
        return len(self._primes)

    def __contains__(self, x: int) -> bool:
        return x in self._primes

    def _check_prime(self, x: int) -> None:
        if x < 3 or not is_prime(x):
            raise AccumulatorError(f"accumulator elements must be odd primes, got {x}")

    def add(self, x: int) -> int:
        """Absorb prime ``x``; returns the new ``Ac``.  Idempotent per element."""
        self._check_prime(x)
        if x not in self._primes:
            self._primes[x] = None
            self._value = powmod(self._value, x, self.params.modulus)
        return self._value

    def add_many(self, xs: list[int]) -> int:
        """Absorb several primes with one combined exponentiation."""
        fresh = []
        for x in xs:
            self._check_prime(x)
            if x not in self._primes:
                self._primes[x] = None
                fresh.append(x)
        if fresh:
            exponent = product(fresh)
            if self.params.has_trapdoor:
                exponent %= self.params.phi()
            n = self.params.modulus
            if self._value == self.params.generator % n:
                # Fresh accumulator (Build's one big fold): the base is the
                # fixed generator, so the windowed table kernel applies.
                self._value = kernels.fixed_base_pow(self.params.generator, n, exponent)
            else:
                self._value = kernels.witness_pow(self._value, exponent, n)
        return self._value

    def remove(self, x: int) -> int:
        """Remove prime ``x`` (requires trapdoor or full recompute).

        With the setup trapdoor this is one exponentiation by ``x^{-1} mod
        phi(n)``; otherwise the value is recomputed from scratch.  Slicer
        never removes on chain (deletion uses a second instance), but the
        baselines and tests do.
        """
        if x not in self._primes:
            raise AccumulatorError(f"{x} is not accumulated")
        del self._primes[x]
        n = self.params.modulus
        if self.params.has_trapdoor:
            inv = mod_inverse(x, self.params.phi())
            self._value = powmod(self._value, inv, n)
        else:
            self._value = kernels.fixed_base_pow(
                self.params.generator, n, product(list(self._primes))
            )
        return self._value

    def witness(self, x: int) -> MembershipWitness:
        """``MemWit``: witness for one accumulated prime (no trapdoor needed)."""
        if x not in self._primes:
            raise AccumulatorError(f"cannot produce membership witness for absent {x}")
        others = [p for p in self._primes if p != x]
        exponent = product(others)
        if self.params.has_trapdoor:
            exponent %= self.params.phi()
        return MembershipWitness(
            kernels.fixed_base_pow(self.params.generator, self.params.modulus, exponent)
        )

    def witness_all(self, executor=None) -> dict[int, MembershipWitness]:
        """Witnesses for every accumulated prime via root-factor recursion.

        Pass a :class:`~repro.parallel.ParallelExecutor` to split the
        recursion tree across workers (subtrees are independent); the
        witness values are identical either way.
        """
        from ..parallel.tasks import witness_map

        n = self.params.modulus
        raw = witness_map(self.params.generator % n, list(self._primes), n, executor)
        return {p: MembershipWitness(w) for p, w in raw.items()}

    def nonmembership_witness(self, x: int) -> NonMembershipWitness:
        """Universal-accumulator proof that prime ``x`` is NOT in the set."""
        self._check_prime(x)
        if x in self._primes:
            raise AccumulatorError(f"{x} is accumulated; no non-membership witness")
        x_p = product(list(self._primes))
        g, a, b = _ext_gcd(x_p, x)
        if g != 1:
            raise AccumulatorError("element shares a factor with the set product")
        n = self.params.modulus
        # a*x_p + b*x = 1  =>  Ac^a = g * (g^{-b})^x
        if b <= 0:
            d = kernels.fixed_base_pow(self.params.generator, n, -b)
        else:
            d = mod_inverse(kernels.fixed_base_pow(self.params.generator, n, b), n)
        return NonMembershipWitness(a, d)


def verify_membership(
    params: AccumulatorParams, accumulated: int, x: int, witness: MembershipWitness
) -> bool:
    """``VerifyMem``: check ``witness^x == Ac`` — what the contract runs."""
    if x < 2:
        return False
    return powmod(witness.value, x, params.modulus) == accumulated % params.modulus


def verify_membership_batch(
    params: AccumulatorParams,
    accumulated: int,
    items: list[tuple[int, MembershipWitness]],
    *,
    trusted: bool = False,
) -> list[bool]:
    """``VerifyMem`` over many ``(prime, witness)`` pairs.

    By default every item is checked individually — exactly the contract's
    per-witness ``VerifyMem``.  Random-linear-combination batching in
    ``Z_n*`` is *malleable* under the order-2 subgroup ``{±1}``: a prover
    that negates an even number of witnesses (``w → n−w``) cancels the sign
    factors pairwise and passes the aggregate while each per-item check
    rejects (see :func:`~repro.crypto.kernels.batch_verify_membership`), so
    the shortcut must never face adversarial witnesses.

    ``trusted=True`` enables the fast path for inputs from a party that
    cannot gain by cheating itself — self-checks over locally computed
    witnesses, e.g. the cloud validating its own witness cache: one
    interleaved multi-exponentiation instead of one full ``pow`` per item,
    falling back to per-item checks when the batch rejects so the verdict
    vector is identical either way.
    """
    if not items:
        return []
    if (
        trusted
        and kernels.kernels_enabled()
        and kernels.batch_verify_membership(
            params.modulus, accumulated, [(p, w.value) for p, w in items]
        )
    ):
        return [True] * len(items)
    return [verify_membership(params, accumulated, p, w) for p, w in items]


def verify_nonmembership(
    params: AccumulatorParams, accumulated: int, x: int, witness: NonMembershipWitness
) -> bool:
    """Check a non-membership witness: ``Ac^a == g * d^x``."""
    n = params.modulus
    a = witness.a
    if a >= 0:
        lhs = powmod(accumulated, a, n)
    else:
        lhs = powmod(mod_inverse(accumulated, n), -a, n)
    rhs = (params.generator * powmod(witness.d, x, n)) % n
    return lhs == rhs



def _ext_gcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns (g, x, y) with a*x + b*y == g."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t
