"""Merkle Hash Tree ADS — the comparison point from paper Section III.B.

The paper chooses the RSA accumulator over a Merkle Hash Tree because the
accumulator's proof is constant-size and "leaks no extraneous information"
(sibling hashes in a Merkle proof reveal neighbourhood structure).  This
module implements the MHT so the ablation benchmark
(``benchmarks/bench_ablation_ads.py``) can measure exactly that trade-off:
log-size proofs and cheap hashing versus constant-size proofs and bignum
exponentiation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..common.errors import ParameterError

_LEAF_TAG = b"\x00"
_NODE_TAG = b"\x01"


def _hash_leaf(data: bytes) -> bytes:
    return hashlib.sha256(_LEAF_TAG + data).digest()


def _hash_node(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(_NODE_TAG + left + right).digest()


@dataclass(frozen=True)
class MerkleProof:
    """Authentication path for one leaf: (sibling hash, sibling-is-right) pairs."""

    leaf_index: int
    path: tuple[tuple[bytes, bool], ...]

    @property
    def size_bytes(self) -> int:
        """Wire size of the proof (drives the ADS ablation bench)."""
        return sum(len(h) + 1 for h, _ in self.path) + 4


class MerkleTree:
    """Static binary Merkle tree over an ordered leaf list."""

    def __init__(self, leaves: list[bytes]) -> None:
        if not leaves:
            raise ParameterError("Merkle tree needs at least one leaf")
        self._leaves = list(leaves)
        self._layers: list[list[bytes]] = [[_hash_leaf(leaf) for leaf in leaves]]
        while len(self._layers[-1]) > 1:
            prev = self._layers[-1]
            layer = []
            for i in range(0, len(prev), 2):
                left = prev[i]
                right = prev[i + 1] if i + 1 < len(prev) else prev[i]
                layer.append(_hash_node(left, right))
            self._layers.append(layer)

    @property
    def root(self) -> bytes:
        return self._layers[-1][0]

    def __len__(self) -> int:
        return len(self._leaves)

    def prove(self, index: int) -> MerkleProof:
        """Authentication path for leaf ``index``."""
        if not 0 <= index < len(self._leaves):
            raise ParameterError(f"leaf index {index} out of range")
        path: list[tuple[bytes, bool]] = []
        pos = index
        for layer in self._layers[:-1]:
            sibling = pos ^ 1
            if sibling >= len(layer):
                sibling = pos  # odd node duplicated upward
            path.append((layer[sibling], sibling > pos or sibling == pos))
            pos //= 2
        return MerkleProof(index, tuple(path))


def verify_merkle(root: bytes, leaf: bytes, proof: MerkleProof) -> bool:
    """Check an authentication path against a published root."""
    node = _hash_leaf(leaf)
    pos = proof.leaf_index
    for sibling, sibling_is_right in proof.path:
        if sibling_is_right:
            node = _hash_node(node, sibling)
        else:
            node = _hash_node(sibling, node)
        pos //= 2
    return node == root
