"""RSA trapdoor permutation (the paper's forward-security mechanism, after
Bost's Sophos [16]).

The data owner holds ``sk`` and *pulls trapdoors backwards* on insertion
(``t_new = pi_sk^{-1}(t_old)``); the cloud, given only ``pk`` and the newest
trapdoor, *pushes forwards* (``t_{i-1} = pi_pk(t_i)``) to walk every older
epoch.  Nobody without ``sk`` can derive a *newer* trapdoor from an older
one, which is exactly forward security: tokens released before an insertion
cannot touch entries added after it.

Trapdoors live in ``Z_n*`` and serialize to fixed-width big-endian bytes so
PRF inputs are canonical.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import KeyError_, ParameterError
from ..common.rng import DeterministicRNG, default_rng
from .modmath import crt_pair, mod_inverse, powmod
from .primes import random_prime

DEFAULT_MODULUS_BITS = 1024
PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class TrapdoorPublicKey:
    """``pk = (n, e)``: enough to evaluate ``pi_pk`` (forward direction)."""

    modulus: int
    exponent: int

    @property
    def byte_len(self) -> int:
        return (self.modulus.bit_length() + 7) // 8

    def apply(self, trapdoor: bytes) -> bytes:
        """``pi_pk(t)``: one step *backwards in epoch time* (cloud side)."""
        x = _decode(trapdoor, self)
        y = powmod(x, self.exponent, self.modulus)
        return _encode(y, self)


@dataclass(frozen=True)
class TrapdoorKeyPair:
    """Full key pair; the owner keeps ``sk`` private."""

    public: TrapdoorPublicKey
    d: int
    p: int
    q: int

    def invert(self, trapdoor: bytes) -> bytes:
        """``pi_sk^{-1}(t)``: derive the *next-epoch* trapdoor (owner side).

        Uses CRT for the usual ~4x private-op speedup.
        """
        x = _decode(trapdoor, self.public)
        d_p = self.d % (self.p - 1)
        d_q = self.d % (self.q - 1)
        r_p = powmod(x % self.p, d_p, self.p)
        r_q = powmod(x % self.q, d_q, self.q)
        y = crt_pair(r_p, self.p, r_q, self.q)
        return _encode(y, self.public)

    def sample_trapdoor(self, rng: DeterministicRNG | None = None) -> bytes:
        """Draw a fresh random trapdoor ``t0`` in the permutation domain."""
        rng = rng or default_rng()
        n = self.public.modulus
        while True:
            x = rng.randrange(2, n - 1)
            if x % self.p and x % self.q:
                return _encode(x, self.public)

    @classmethod
    def generate(
        cls, bits: int = DEFAULT_MODULUS_BITS, rng: DeterministicRNG | None = None
    ) -> "TrapdoorKeyPair":
        """Fresh RSA keygen with ``e = 65537``."""
        if bits < 32 or bits % 2:
            raise ParameterError("RSA modulus bits must be even and >= 32")
        rng = rng or default_rng()
        half = bits // 2
        while True:
            p = random_prime(half, rng)
            q = random_prime(half, rng)
            if p == q:
                continue
            n = p * q
            if n.bit_length() != bits:
                continue
            lam = _lcm(p - 1, q - 1)
            if lam % PUBLIC_EXPONENT == 0:
                continue
            d = mod_inverse(PUBLIC_EXPONENT, lam)
            return cls(TrapdoorPublicKey(n, PUBLIC_EXPONENT), d, p, q)


def _decode(trapdoor: bytes, pk: TrapdoorPublicKey) -> int:
    if len(trapdoor) != pk.byte_len:
        raise KeyError_(
            f"trapdoor must be {pk.byte_len} bytes for this modulus, got {len(trapdoor)}"
        )
    x = int.from_bytes(trapdoor, "big")
    if not 0 < x < pk.modulus:
        raise KeyError_("trapdoor outside the permutation domain")
    return x


def _encode(x: int, pk: TrapdoorPublicKey) -> bytes:
    return x.to_bytes(pk.byte_len, "big")


def _lcm(a: int, b: int) -> int:
    from math import gcd

    return a // gcd(a, b) * b
