"""Primality testing and prime generation.

Implements Miller-Rabin (deterministic for 64-bit inputs, randomized above),
random prime sampling, and safe-prime generation for the RSA accumulator
setup (paper Section III.B requires ``n = p*q`` with ``p, q`` safe primes so
that ``QR_n`` has large prime-order subgroups).
"""

from __future__ import annotations

import math

from ..common.errors import ParameterError
from ..common.rng import DeterministicRNG, default_rng

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
    233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313,
    317, 331, 337, 347, 349,
]

# Deterministic Miller-Rabin witnesses valid for all n < 3.3 * 10^24
# (Sorenson & Webster), which comfortably covers 64-bit inputs.
_DETERMINISTIC_WITNESSES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41]


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One Miller-Rabin round; True means 'probably prime for witness a'."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


_PRIMORIAL = math.prod(_SMALL_PRIMES)
_LARGEST_SMALL_PRIME = _SMALL_PRIMES[-1]


def is_prime(n: int, rng: DeterministicRNG | None = None, rounds: int = 40) -> bool:
    """Miller-Rabin primality test.

    Deterministic (proven) below 3.3e24; otherwise ``rounds`` random
    witnesses give error probability <= 4**-rounds.  Small-factor rejection
    uses one gcd against the small-prime primorial, which is much faster in
    CPython than seventy trial divisions — ``H_prime`` calls this in a hot
    loop during ADS construction.
    """
    if n < 2:
        return False
    if n <= _LARGEST_SMALL_PRIME:
        return n in _SMALL_PRIMES
    if math.gcd(n, _PRIMORIAL) != 1:
        return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < 3_317_044_064_679_887_385_961_981:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n]
    else:
        rng = rng or default_rng()
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    return all(_miller_rabin_round(n, a, d, r) for a in witnesses)


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def random_prime(bits: int, rng: DeterministicRNG | None = None) -> int:
    """Sample a uniform ``bits``-bit prime (top bit set so the size is exact)."""
    if bits < 2:
        raise ParameterError("primes need at least 2 bits")
    rng = rng or default_rng()
    while True:
        candidate = rng.randbits(bits) | (1 << (bits - 1)) | 1
        if is_prime(candidate, rng):
            return candidate


def random_safe_prime(bits: int, rng: DeterministicRNG | None = None) -> int:
    """Sample a ``bits``-bit safe prime ``p`` (i.e. ``(p-1)/2`` also prime).

    Uses the standard search over Sophie Germain candidates with trial
    division pre-sieving; safe primes are sparse, so this dominates
    accumulator setup time for large moduli (done once per deployment).
    """
    if bits < 4:
        raise ParameterError("safe primes need at least 4 bits")
    rng = rng or default_rng()
    while True:
        # Sample q candidate for p = 2q + 1 with exact bit length.
        q = rng.randbits(bits - 1) | (1 << (bits - 2)) | 1
        p = 2 * q + 1
        if p.bit_length() != bits:
            continue
        # Cheap joint pre-sieve before the expensive tests.
        composite = False
        for sp in _SMALL_PRIMES:
            if p != sp and p % sp == 0:
                composite = True
                break
            if q != sp and q % sp == 0:
                composite = True
                break
        if composite:
            continue
        if is_prime(q, rng) and is_prime(p, rng):
            return p
