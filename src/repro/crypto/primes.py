"""Primality testing and prime generation.

Implements a staged fast-rejection pipeline (primorial gcd → base-2 strong
probable prime → Baillie–PSW below 2^64 → proven Miller-Rabin witness set
below 3.3e24 → fixed hash-derived witness schedule above), plus random prime
sampling and safe-prime generation for the RSA accumulator setup (paper
Section III.B requires ``n = p*q`` with ``p, q`` safe primes so that ``QR_n``
has large prime-order subgroups).

The pipeline is *deterministic at every size*: for inputs above the proven
Miller-Rabin band, witnesses are derived from ``n`` itself via SHA-256 in
counter mode rather than drawn from the shared deterministic RNG stream.
(The seed code drew 40 witnesses from ``default_rng()``, silently coupling
primality testing to every seeded protocol sequence that followed — see the
stream-parity regression test.)  Determinism also means the owner, the cloud
and the simulated contract agree on the exact candidate walk ``H_prime``
performs, which the contract charges gas on.
"""

from __future__ import annotations

import hashlib
import math
from typing import NamedTuple

from ..common.errors import ParameterError
from ..common.rng import DeterministicRNG, default_rng
from . import modmath

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
    233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313,
    317, 331, 337, 347, 349,
]
_SMALL_PRIME_SET = frozenset(_SMALL_PRIMES)

# Deterministic Miller-Rabin witnesses valid for all n < 3.3 * 10^24
# (Sorenson & Webster), which comfortably covers 64-bit inputs.
_DETERMINISTIC_WITNESSES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41]
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981

# Above the proven band: 24 witnesses derived from n by SHA-256 counter mode.
# Error probability <= 4^-24 per the standard Miller-Rabin bound (and far
# lower for uniformly random witnesses, per Damgård-Landrock-Pomerance).
HASH_WITNESS_ROUNDS = 24
_WITNESS_DOMAIN = b"repro/mr-witness/v1"

_PRIMORIAL = math.prod(_SMALL_PRIMES)
_LARGEST_SMALL_PRIME = _SMALL_PRIMES[-1]


class CandidateVerdict(NamedTuple):
    """Outcome and cost accounting of one primality pipeline run.

    ``fast_reject`` is True when the candidate was discarded before entering
    the witness schedule — by the primorial gcd (``mr_rounds == 0``) or by
    the base-2 strong-probable-prime early exit (``mr_rounds == 1``).
    ``mr_rounds`` counts every strong-probable-prime round executed,
    including the base-2 one; ``lucas_tests`` counts strong Lucas tests
    (the Baillie–PSW second stage used below 2^64).
    """

    probable_prime: bool
    mr_rounds: int
    lucas_tests: int
    fast_reject: bool


def _presieve_ok(n: int) -> bool:
    """True when ``n`` has no prime factor <= 349 (or *is* such a prime).

    One gcd against the small-prime primorial is much faster in CPython than
    seventy trial divisions.  Exactness matters: ``g == n`` only certifies
    ``n`` when ``n`` is itself one of the sieve primes (e.g. 15 divides the
    primorial without being prime).
    """
    g = modmath.gcd(n, _PRIMORIAL)
    return g == 1 or (g == n and n in _SMALL_PRIME_SET)


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One Miller-Rabin round; True means 'probably prime for witness a'."""
    x = modmath.powmod(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def _jacobi(a: int, n: int) -> int:
    """Jacobi symbol (a/n) for odd positive ``n``."""
    a %= n
    result = 1
    while a:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def _lucas_strong_prp(n: int) -> bool:
    """Strong Lucas probable-prime test with Selfridge's Method A parameters.

    Callers guarantee ``n`` is odd, > 349, coprime to the primorial and not
    a perfect square (the D-search below does not terminate for squares).
    Combined with the base-2 strong-probable-prime test this is Baillie–PSW,
    which has no known counterexample and is verified exhaustively correct
    below 2^64 (Feitsma/Gilchrist).
    """
    d = 5
    while True:
        j = _jacobi(d, n)
        if j == 0:
            # gcd(|d|, n) is a nontrivial factor (n > |d| here).
            return abs(d) == n
        if j == -1:
            break
        d = -(d + 2) if d > 0 else -(d - 2)  # 5, -7, 9, -11, ...
    q = (1 - d) // 4

    def half(x: int) -> int:
        x %= n
        return (x + n) // 2 if x & 1 else x // 2

    # n + 1 = k * 2^s with k odd.
    k = (n + 1) >> 1
    s = 1
    while not k & 1:
        k >>= 1
        s += 1
    # Left-to-right double-and-add of the Lucas chain with P = 1:
    # U_1 = 1, V_1 = P; doubling m -> 2m, increment via the P=1 identities.
    u, v, qk = 1, 1, q % n
    for bit in bin(k)[3:]:
        u = u * v % n
        v = (v * v - 2 * qk) % n
        qk = qk * qk % n
        if bit == "1":
            u, v = half(u + v), half(d * u + v)
            qk = qk * q % n
    if u == 0 or v == 0:
        return True
    for _ in range(s - 1):
        v = (v * v - 2 * qk) % n
        if v == 0:
            return True
        qk = qk * qk % n
    return False


def _derived_witnesses(n: int, count: int):
    """Yield ``count`` Miller-Rabin witnesses in [2, n-2] derived from ``n``.

    SHA-256 in counter mode over ``n`` itself: deterministic, independent of
    any RNG stream, and unpredictable enough that no fixed adversarial
    composite family is known to defeat it.  Eight extra bytes of hash
    output make the modular bias below 2^-64.
    """
    n_bytes = n.to_bytes((n.bit_length() + 7) // 8, "big")
    span = n - 3
    width = (span.bit_length() + 7) // 8 + 8
    for i in range(count):
        material = b""
        block = 0
        while len(material) < width:
            material += hashlib.sha256(
                _WITNESS_DOMAIN
                + i.to_bytes(4, "big")
                + block.to_bytes(4, "big")
                + n_bytes
            ).digest()
            block += 1
        yield 2 + int.from_bytes(material[:width], "big") % span


def test_candidate(n: int) -> CandidateVerdict:
    """Run the full fast-rejection pipeline on ``n`` with cost accounting.

    Stages, cheapest first:

    1. primorial gcd (rejects ~80% of odd candidates for free),
    2. base-2 strong probable prime (rejects essentially every surviving
       composite with a single modexp),
    3. below 2^64: one strong Lucas test completes Baillie–PSW, which is
       deterministically correct there — no further rounds needed,
    4. below 3.3e24: the remaining proven Sorenson-Webster witnesses,
    5. above: ``HASH_WITNESS_ROUNDS`` hash-derived witnesses.
    """
    if n < 2:
        return CandidateVerdict(False, 0, 0, True)
    if n <= _LARGEST_SMALL_PRIME:
        return CandidateVerdict(n in _SMALL_PRIME_SET, 0, 0, True)
    if not _presieve_ok(n):
        return CandidateVerdict(False, 0, 0, True)
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if not _miller_rabin_round(n, 2, d, r):
        return CandidateVerdict(False, 1, 0, True)
    if n < 1 << 64:
        if math.isqrt(n) ** 2 == n:
            return CandidateVerdict(False, 1, 0, False)
        return CandidateVerdict(_lucas_strong_prp(n), 1, 1, False)
    if n < _DETERMINISTIC_BOUND:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES[1:] if a < n]
    else:
        witnesses = _derived_witnesses(n, HASH_WITNESS_ROUNDS)
    rounds = 1
    for a in witnesses:
        rounds += 1
        if not _miller_rabin_round(n, a, d, r):
            return CandidateVerdict(False, rounds, 0, False)
    return CandidateVerdict(True, rounds, 0, False)


def is_prime(n: int, rng: DeterministicRNG | None = None, rounds: int = 40) -> bool:
    """Primality test (staged pipeline, deterministic at every input size).

    ``rng`` and ``rounds`` are retained for call-site compatibility but
    ignored: witnesses above the proven band are derived from ``n`` itself
    (SHA-256 counter mode), so calling this never consumes RNG state.
    """
    return test_candidate(n).probable_prime


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def random_prime(bits: int, rng: DeterministicRNG | None = None) -> int:
    """Sample a uniform ``bits``-bit prime (top bit set so the size is exact)."""
    if bits < 2:
        raise ParameterError("primes need at least 2 bits")
    rng = rng or default_rng()
    while True:
        candidate = rng.randbits(bits) | (1 << (bits - 1)) | 1
        # The explicit pre-sieve skips the pipeline call for ~80% of
        # candidates; it makes exactly the decisions stage 1 would, so the
        # sampled stream is unchanged.
        if not _presieve_ok(candidate):
            continue
        if is_prime(candidate):
            return candidate


def random_safe_prime(bits: int, rng: DeterministicRNG | None = None) -> int:
    """Sample a ``bits``-bit safe prime ``p`` (i.e. ``(p-1)/2`` also prime).

    Uses the standard search over Sophie Germain candidates; safe primes are
    sparse, so generation dominates accumulator setup time for large moduli
    (done once per deployment).  The joint pre-sieve is two primorial gcds —
    the same shared rejection ``is_prime`` uses — instead of the seed code's
    ~70-iteration trial-division loop; it accepts and rejects exactly the
    same candidates, so seeded sampling streams are unchanged.
    """
    if bits < 4:
        raise ParameterError("safe primes need at least 4 bits")
    rng = rng or default_rng()
    while True:
        # Sample q candidate for p = 2q + 1 with exact bit length.
        q = rng.randbits(bits - 1) | (1 << (bits - 2)) | 1
        p = 2 * q + 1
        if p.bit_length() != bits:
            continue
        # Cheap joint pre-sieve before the expensive tests.
        if not (_presieve_ok(p) and _presieve_ok(q)):
            continue
        if is_prime(q) and is_prime(p):
            return p
