"""``H_prime``: hash arbitrary bytes to a prime (Barić-Pfitzmann representatives).

The RSA accumulator only absorbs primes, so protocol values (search token ||
multiset hash) are first mapped to *prime representatives* through a random
oracle (paper Section III.B, citing [29]).  The standard construction hashes
the input together with an incrementing counter until the digest, read as an
odd integer of fixed bit length, is prime.  Determinism matters: the data
owner, the cloud and the verifying smart contract must all derive the *same*
prime from the same protocol bytes, so the counter walk is part of the
function, not a retry loop with randomness.
"""

from __future__ import annotations

import hashlib

from ..common import perfstats
from ..common.errors import ParameterError
from .primes import test_candidate

DEFAULT_PRIME_BITS = 256


class HashToPrime:
    """Deterministic random-oracle-to-prime map of fixed output size."""

    def __init__(self, prime_bits: int = DEFAULT_PRIME_BITS, domain: bytes = b"H_prime") -> None:
        if prime_bits < 16:
            raise ParameterError("prime representatives need at least 16 bits")
        if prime_bits > 512:
            raise ParameterError("prime representatives above 512 bits are wasteful")
        self.prime_bits = prime_bits
        self._domain = domain

    def _candidate(self, data: bytes, counter: int) -> int:
        material = b""
        block = 0
        needed = (self.prime_bits + 7) // 8
        while len(material) < needed:
            material += hashlib.sha256(
                self._domain + counter.to_bytes(8, "big") + block.to_bytes(4, "big") + data
            ).digest()
            block += 1
        candidate = int.from_bytes(material[:needed], "big")
        # Force exact bit length and oddness so the output size is stable.
        candidate |= 1 << (self.prime_bits - 1)
        candidate |= 1
        candidate &= (1 << self.prime_bits) - 1
        return candidate

    def hash_to_prime(self, data: bytes) -> int:
        """Map ``data`` to a ``prime_bits``-bit prime, deterministically."""
        return self.hash_to_prime_with_counter(data)[0]

    def hash_to_prime_with_counter(self, data: bytes) -> tuple[int, int]:
        """As :meth:`hash_to_prime`, also returning the candidate count.

        The simulated smart contract charges hashing gas per candidate, so it
        needs to know how many counter steps the deterministic walk took.

        Each candidate goes through the staged fast-rejection pipeline
        (:func:`repro.crypto.primes.test_candidate`); the walk publishes its
        cost accounting as ``hprime.*`` perf counters.  The counters are
        value-deterministic — a function of the candidate integers alone —
        so they participate in the exact-counter CI gate.
        """
        stats = perfstats.STATS
        counter = 0
        candidates = 0
        mr_rounds = 0
        lucas_tests = 0
        fast_rejects = 0
        try:
            while True:
                candidate = self._candidate(data, counter)
                verdict = test_candidate(candidate)
                candidates += 1
                mr_rounds += verdict.mr_rounds
                lucas_tests += verdict.lucas_tests
                fast_rejects += verdict.fast_reject
                if verdict.probable_prime:
                    return candidate, counter + 1
                counter += 1
        finally:
            stats.incr("hprime.candidates", candidates)
            stats.incr("hprime.mr_rounds", mr_rounds)
            stats.incr("hprime.lucas_tests", lucas_tests)
            stats.incr("hprime.fast_rejects", fast_rejects)

    __call__ = hash_to_prime
