"""CPA-secure symmetric encryption (the paper's ``Enc``/``Dec``, AES-128).

Record IDs are encrypted with AES-128 in CTR mode with a random nonce when
the ``cryptography`` package is importable (it is in the reference
environment).  A pure-stdlib HMAC-keystream fallback keeps the library
dependency-free: it is a textbook PRF-based stream cipher, CPA-secure under
the same assumption the paper already makes on HMAC.

Both ciphers produce ``nonce || ciphertext`` and are deterministic given an
explicit nonce, which the protocol exploits: the multiset hash in Algorithm
1 line 15 is computed over ``Enc(K_R, R)``, so the *same* ciphertext bytes
must reach the cloud, the user and the verifying contract.
"""

from __future__ import annotations

import hashlib
import hmac

from ..common.errors import KeyError_, ParameterError
from ..common.rng import DeterministicRNG, default_rng

NONCE_LEN = 16
KEY_LEN = 16

try:  # pragma: no cover - import probing
    from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

    _HAVE_AES = True
except ImportError:  # pragma: no cover
    _HAVE_AES = False


def _hmac_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """PRF counter-mode keystream: HMAC(key, nonce || counter) blocks."""
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        blocks.append(
            hmac.new(key, nonce + counter.to_bytes(8, "big"), hashlib.sha256).digest()
        )
        counter += 1
    return b"".join(blocks)[:length]


class SymmetricCipher:
    """The paper's ``(KGen, Enc, Dec)`` triple for record-ID encryption."""

    def __init__(self, key: bytes, rng: DeterministicRNG | None = None) -> None:
        if len(key) != KEY_LEN:
            raise KeyError_(f"symmetric key must be {KEY_LEN} bytes, got {len(key)}")
        self._key = key
        self._rng = rng or default_rng()

    @classmethod
    def generate(cls, rng: DeterministicRNG | None = None) -> "SymmetricCipher":
        """``KGen``: sample a fresh random key."""
        rng = rng or default_rng()
        return cls(rng.token_bytes(KEY_LEN), rng)

    @property
    def key(self) -> bytes:
        return self._key

    def encrypt(self, plaintext: bytes, nonce: bytes | None = None) -> bytes:
        """``Enc``: returns ``nonce || ct``; random nonce unless one is given."""
        if nonce is None:
            nonce = self._rng.token_bytes(NONCE_LEN)
        if len(nonce) != NONCE_LEN:
            raise ParameterError(f"nonce must be {NONCE_LEN} bytes")
        if _HAVE_AES:
            encryptor = Cipher(algorithms.AES(self._key), modes.CTR(nonce)).encryptor()
            body = encryptor.update(plaintext) + encryptor.finalize()
        else:
            stream = _hmac_keystream(self._key, nonce, len(plaintext))
            body = bytes(a ^ b for a, b in zip(plaintext, stream))
        return nonce + body

    def decrypt(self, blob: bytes) -> bytes:
        """``Dec``: inverse of :meth:`encrypt`."""
        if len(blob) < NONCE_LEN:
            raise ParameterError("ciphertext shorter than nonce")
        nonce, body = blob[:NONCE_LEN], blob[NONCE_LEN:]
        if _HAVE_AES:
            decryptor = Cipher(algorithms.AES(self._key), modes.CTR(nonce)).decryptor()
            return decryptor.update(body) + decryptor.finalize()
        stream = _hmac_keystream(self._key, nonce, len(body))
        return bytes(a ^ b for a, b in zip(body, stream))
