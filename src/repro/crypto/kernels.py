"""Single-core crypto kernels: memoization and precomputation for hot primitives.

PR 1 parallelised the pipelines *across* processes; this module makes each
process cheaper.  Four kernels, each byte-identical to the code it replaces
(property tests assert this), each reporting to
:mod:`repro.common.perfstats`:

* **Memoized ``H_prime``** — the deterministic counter walk (one digest +
  Miller-Rabin per candidate) re-runs for the *same* ``token‖hash`` bytes at
  the owner (Build), the cloud (search, per repeat query) and the verifier /
  gas-metering contract.  The memo stores ``(prime, counter)`` so cached hits
  still report the exact candidate count the contract charges gas for.
* **Fixed-base exponentiation** — the accumulator raises one fixed generator
  ``g`` to enormous exponents (products of thousands of prime
  representatives).  A per-``(n, g)`` table of ``g^(2^(w·j))`` turns each
  exponentiation into ~``bits/w`` multiplications via the bucket method,
  replacing ``pow``'s ~``bits`` squarings + ``bits/2`` multiplications.
* **Trapdoor-chain cache** — the cloud walks ``t_j → t_{j-1} → … → t_0``
  through the public RSA permutation on *every* search; each step is a full
  modexp.  ``π_pk`` is a fixed deterministic function, so single steps are
  memoized: a repeat search (or any search after an Insert extended the
  chain by one) pays one miss and hits the rest of the walk.  Entries can
  never go stale — a forward-secure Insert introduces a *new* trapdoor
  (a miss), it never changes the image of an old one.
* **Batched multi-exponentiation** — ``VerifyMem`` over many witnesses in
  one pass: a shared squaring chain over all bases instead of one full
  ``pow`` per witness.  **Trusted inputs only**: random-linear-combination
  batching in ``Z_n*`` is malleable under the order-2 subgroup ``{±1}``
  (see :func:`batch_verify_membership`), so adversarial-facing verification
  (Algorithm 5 / the contract) stays per-witness and the batch serves
  self-checks over locally computed witnesses.

Every cache is **process-local** and keyed only on deterministic inputs, so
forked parallel workers inherit a warm cache at fork time and populate their
own copies afterwards — worker fan-out composes with, never conflicts with,
the kernels.  ``REPRO_KERNELS=0`` disables the layer (the benchmarks use
this for honest cold/warm comparisons).
"""

from __future__ import annotations

import hashlib
import os

from ..common import perfstats
from ..common.encoding import encode_parts
from . import modmath
from .hash_to_prime import HashToPrime

#: Environment knob: any of ``0/false/off/no`` disables the kernel layer.
KERNELS_ENV = "REPRO_KERNELS"

_DISABLED_VALUES = {"0", "false", "off", "no"}


def kernels_enabled() -> bool:
    """Whether the kernel layer is active (default: yes)."""
    return os.environ.get(KERNELS_ENV, "1").strip().lower() not in _DISABLED_VALUES


# ------------------------------------------------------------ memoized H_prime

#: Cap per-memo entries; beyond it the oldest entries are evicted (FIFO via
#: dict insertion order).  2^16 primes ≈ a few MB — far above any test or
#: benchmark working set, small enough to never matter for memory.
HASH_MEMO_MAX = 1 << 16

_HASH_MEMOS: dict[tuple[int, bytes], dict[bytes, tuple[int, int]]] = {}


class MemoizedHashToPrime(HashToPrime):
    """``H_prime`` with a process-local memo keyed on the input bytes.

    The memo stores the full ``(prime, counter)`` pair, so
    :meth:`hash_to_prime_with_counter` is exact on hits: the simulated smart
    contract charges hashing gas per candidate and must see the same count
    warm as cold (``tests/crypto/test_hash_to_prime.py`` asserts parity).
    """

    def __init__(
        self,
        prime_bits: int,
        domain: bytes = b"H_prime",
        memo: dict[bytes, tuple[int, int]] | None = None,
    ) -> None:
        super().__init__(prime_bits, domain)
        self._memo = memo if memo is not None else {}

    def hash_to_prime_with_counter(self, data: bytes) -> tuple[int, int]:
        memo = self._memo
        cached = memo.get(data)
        if cached is not None:
            perfstats.incr("hash_to_prime.hit")
            return cached
        perfstats.incr("hash_to_prime.miss")
        result = super().hash_to_prime_with_counter(data)
        perfstats.incr("hash_to_prime.candidates", result[1])
        if len(memo) >= HASH_MEMO_MAX:
            del memo[next(iter(memo))]
        memo[data] = result
        return result


def memoized_hash_to_prime(prime_bits: int, domain: bytes = b"H_prime") -> MemoizedHashToPrime:
    """A :class:`MemoizedHashToPrime` sharing one memo per ``(bits, domain)``.

    Owner, cloud, verifier and contract all construct their own instances;
    sharing the memo per process is what makes the cloud's recomputation of
    a prime the owner already derived (or a repeat query re-derived) a hit.
    """
    memo = _HASH_MEMOS.setdefault((prime_bits, domain), {})
    return MemoizedHashToPrime(prime_bits, domain, memo)


# ----------------------------------------------------- fixed-base exponentiation

#: Below this exponent size the C-implemented ``pow`` wins over a
#: Python-level loop; above it the table method's ~w× fewer multiplications
#: dominate.  Tuned on the 512/1024-bit demo moduli (see bench_kernels.py).
FIXED_BASE_MIN_EXP_BITS = 2048

_FIXED_BASES: dict[tuple[int, int], "FixedBaseExp"] = {}


class FixedBaseExp:
    """Windowed fixed-base exponentiation ``g^x mod n`` for one ``(g, n)``.

    Maintains tables ``T_w[j] = g^(2^(w·j)) mod n`` (extended incrementally
    as larger exponents arrive) and evaluates ``g^x`` with the bucket
    method: split ``x`` into base-``2^w`` digits, multiply each table entry
    into its digit's bucket, then fold the buckets with the running-suffix
    trick.  Cost ≈ ``bits(x)/w`` multiplications + ``2·2^w`` fold steps,
    versus ``bits(x)`` squarings + ``bits(x)/2`` multiplications for plain
    square-and-multiply — the win grows with the exponent, which for the
    accumulator is a product of thousands of prime representatives.
    """

    __slots__ = ("base", "modulus", "_tables")

    def __init__(self, base: int, modulus: int) -> None:
        self.base = base % modulus
        self.modulus = modulus
        self._tables: dict[int, list[int]] = {}

    def _table(self, window: int, digits: int) -> list[int]:
        table = self._tables.setdefault(window, [self.base])
        n = self.modulus
        while len(table) < digits:
            value = table[-1]
            for _ in range(window):
                value = value * value % n
            table.append(value)
            perfstats.incr("fixed_base.table_extensions")
        return table

    def pow(self, exponent: int) -> int:
        """``base^exponent mod modulus`` — identical value to built-in pow."""
        if exponent < 0:
            raise ValueError("fixed-base exponent must be non-negative")
        bits = exponent.bit_length()
        if bits < FIXED_BASE_MIN_EXP_BITS:
            perfstats.incr("fixed_base.builtin_pow")
            return modmath.powmod(self.base, exponent, self.modulus)
        perfstats.incr("fixed_base.table_pow")
        window = 8 if bits >= 8192 else 4
        mask = (1 << window) - 1
        n = self.modulus
        # Digit extraction must be O(bits): repeated `e >>= window` on a
        # multi-hundred-kilobit exponent is quadratic (each shift copies the
        # whole integer) and would swallow the table's entire win.  to_bytes
        # is one C-level pass; little-endian bytes ARE the base-256 digits.
        raw = exponent.to_bytes((bits + 7) // 8, "little")
        if window == 8:
            digits: bytes | list[int] = raw
        else:
            digits = []
            for byte in raw:
                digits.append(byte & 15)
                digits.append(byte >> 4)
            if digits and digits[-1] == 0:
                digits.pop()
        table = self._table(window, len(digits))
        # Bucket accumulation: bucket[d] multiplies every g^(2^(w·j)) whose
        # digit is d; the suffix fold then contributes bucket[d]^d.  Table
        # state is plain int (cache-export safe); operands are wrapped here
        # so a native backend accelerates the inner multiplications.
        backend = modmath.active_backend()
        if backend.native:
            n = backend.wrap(n)
            table = [backend.wrap(t) for t in table]
        one = backend.wrap(1)
        buckets = [one] * (1 << window)
        for j, d in enumerate(digits):
            if d:
                buckets[d] = buckets[d] * table[j] % n
        acc = one
        result = one
        for d in range(mask, 0, -1):
            acc = acc * buckets[d] % n
            result = result * acc % n
        return backend.unwrap(result)


def fixed_base_pow(base: int, modulus: int, exponent: int) -> int:
    """``base^exponent mod modulus`` through the per-process table cache.

    Falls back to a single backend ``powmod`` when the kernel layer is
    disabled, so call sites need no gating of their own.
    """
    if not kernels_enabled():
        return modmath.powmod(base, exponent, modulus)
    key = (base, modulus)
    kernel = _FIXED_BASES.get(key)
    if kernel is None:
        kernel = _FIXED_BASES[key] = FixedBaseExp(base, modulus)
    return kernel.pow(exponent)


# ------------------------------------------------ wNAF witness exponentiation

#: Below this exponent size built-in ``pow``'s C loop wins; above it the
#: signed-digit recoding's ~2× fewer multiplications (vs. ``pow``'s 5-bit
#: unsigned window) pay for the Python-level loop.  The split root-factor
#: witness tree crosses this threshold at its top levels, where each node
#: exponent is a product of hundreds of prime representatives.
WNAF_MIN_EXP_BITS = 1 << 14

#: Exponents at or above this many bits use window 7 instead of 6.
WNAF_LARGE_EXP_BITS = 1 << 18


def wnaf_digits(exponent: int, window: int = 6) -> list[int]:
    """Width-``window`` non-adjacent form of ``exponent``, least digit first.

    Digits are 0 or odd with ``|d| < 2^(window-1)``, and every nonzero digit
    is followed by at least ``window - 1`` zeros — so an exponentiation pays
    one table multiplication per ``window`` squarings on average, and only
    odd powers of the base need precomputing.

    The recoding is O(bits): one C-level ``bin()`` pass plus small-int
    arithmetic per position.  (The textbook loop ``e -= d; e >>= 1`` on the
    bignum itself is quadratic — each shift copies the whole integer — and
    measurably *slower* than built-in ``pow`` at witness-tree sizes.)
    """
    if exponent < 0:
        raise ValueError("wNAF exponent must be non-negative")
    if not 2 <= window <= 12:
        raise ValueError("wNAF window must be in [2, 12]")
    if exponent == 0:
        return []
    bits = bin(exponent)[2:][::-1]
    nbits = len(bits)
    width = 1 << window
    half = width >> 1
    digits: list[int] = []
    append = digits.append
    carry = 0
    i = 0
    while i < nbits or carry:
        cur = carry + (1 if i < nbits and bits[i] == "1" else 0)
        if not cur & 1:
            append(0)
            carry = cur >> 1
            i += 1
            continue
        # Odd position: absorb a full window of bits (plus the carry) into
        # one signed odd digit; a high digit borrows from the next window.
        chunk = carry + int(bits[i:i + window][::-1] or "0", 2)
        d = chunk & (width - 1)
        if d >= half:
            d -= width
            carry = 1
        else:
            carry = 0
        append(d)
        for _ in range(window - 1):
            append(0)
        i += window
    while digits and digits[-1] == 0:
        digits.pop()
    return digits


class WNafExp:
    """Signed-window exponentiation ``base^x mod n`` for one ``(base, n)``.

    Precomputes the odd powers ``base^1, base^3, …`` and their inverses
    (one extended-gcd for ``base^{-1}``, then multiplications), then walks
    the wNAF digit string with one squaring per digit.  Negative digits are
    what make the window *signed*: they halve the table size and reduce
    multiplications versus an unsigned window of the same width.

    Raises ``ValueError`` from table construction when ``base`` is not
    invertible mod ``n`` — for an RSA modulus that means ``gcd`` found a
    factor; callers fall back to plain ``powmod``.
    """

    __slots__ = ("base", "modulus", "_inverse", "_tables")

    def __init__(self, base: int, modulus: int) -> None:
        self.base = base % modulus
        self.modulus = modulus
        self._inverse: int | None = None
        self._tables: dict[int, tuple[list[int], list[int]]] = {}

    def _table(self, window: int) -> tuple[list[int], list[int]]:
        tab = self._tables.get(window)
        if tab is None:
            n = self.modulus
            if self._inverse is None:
                self._inverse = modmath.invert(self.base, n)
            count = 1 << (window - 2)  # odd powers 1, 3, ..., 2^(window-1) - 1
            base_sq = self.base * self.base % n
            inv_sq = self._inverse * self._inverse % n
            pos = [self.base]
            neg = [self._inverse]
            for _ in range(count - 1):
                pos.append(pos[-1] * base_sq % n)
                neg.append(neg[-1] * inv_sq % n)
            tab = (pos, neg)
            self._tables[window] = tab
            perfstats.incr("wnaf.table_builds")
        return tab

    def pow(self, exponent: int, window: int | None = None) -> int:
        """``base^exponent mod modulus`` — identical value to built-in pow."""
        if exponent < 0:
            raise ValueError("wNAF exponent must be non-negative")
        n = self.modulus
        if exponent == 0:
            return 1 % n
        if window is None:
            window = 7 if exponent.bit_length() >= WNAF_LARGE_EXP_BITS else 6
        pos, neg = self._table(window)
        result = 1
        for d in reversed(wnaf_digits(exponent, window)):
            result = result * result % n
            if d > 0:
                result = result * pos[(d - 1) >> 1] % n
            elif d:
                result = result * neg[(-d - 1) >> 1] % n
        return result


#: Single-slot kernel cache: the root-factor recursion raises the *same*
#: node value to two sibling exponents back to back, so one slot captures
#: the table reuse without growing state (every tree node has a new base).
_WNAF_LAST: WNafExp | None = None


def witness_pow(base: int, exponent: int, modulus: int) -> int:
    """``base^exponent mod modulus`` for witness-tree nodes.

    Routes to wNAF when the kernel layer is on, the backend is pure python
    and the exponent is large enough to beat built-in ``pow``; a native
    backend's ``powmod`` already wins, so wNAF never engages there.
    """
    if exponent < 0:
        raise ValueError("witness exponent must be non-negative")
    global _WNAF_LAST
    if (
        not kernels_enabled()
        or modmath.active_backend().native
        or exponent.bit_length() < WNAF_MIN_EXP_BITS
    ):
        return modmath.powmod(base, exponent, modulus)
    kernel = _WNAF_LAST
    if kernel is None or kernel.modulus != modulus or kernel.base != base % modulus:
        kernel = WNafExp(base, modulus)
        _WNAF_LAST = kernel
    try:
        result = kernel.pow(exponent)
    except ValueError:
        # Base not invertible: gcd(base, modulus) > 1 would factor an RSA
        # modulus — never expected, but correctness cannot depend on that.
        perfstats.incr("wnaf.noninvertible_fallback")
        return modmath.powmod(base, exponent, modulus)
    perfstats.incr("wnaf.pow")
    return result


# ------------------------------------------------------------ trapdoor chains

#: Cache cap: trapdoors are modulus-width byte strings (128 B at 1024 bits);
#: 2^16 entries stay in the tens of MB worst case.
TRAPDOOR_CACHE_MAX = 1 << 16

_TRAPDOOR_CHAINS: dict[tuple[int, int], "TrapdoorChainCache"] = {}


class TrapdoorChainCache:
    """Memo of single public-permutation steps ``t → π_pk(t)``.

    The cloud's epoch walk applies ``π_pk`` (one RSA modexp) per epoch per
    token per search.  ``π_pk`` is a fixed public function of a fixed key,
    so the map is memoized: a repeat search walks the whole chain on dict
    hits, and after a forward-secure Insert only the *new* head trapdoor
    misses — its image is the previous head, where the cached chain resumes.
    Correct invalidation is the empty set: no insert, deletion or key-free
    party action can change ``π_pk(t)`` for an existing ``t``.
    """

    __slots__ = ("public", "_memo")

    def __init__(self, public=None) -> None:
        # ``public`` may be None for a cache rebuilt from a worker export
        # (the key object does not cross the process boundary); it is
        # backfilled on the next `trapdoor_chain(public)` lookup, and only
        # a *miss* needs it.
        self.public = public  # TrapdoorPublicKey (duck-typed: .apply)
        self._memo: dict[bytes, bytes] = {}

    def step(self, trapdoor: bytes) -> bytes:
        """``π_pk(trapdoor)``, memoized."""
        memo = self._memo
        cached = memo.get(trapdoor)
        if cached is not None:
            perfstats.incr("trapdoor_chain.hit")
            return cached
        perfstats.incr("trapdoor_chain.miss")
        result = self.public.apply(trapdoor)
        if len(memo) >= TRAPDOOR_CACHE_MAX:
            del memo[next(iter(memo))]
        memo[trapdoor] = result
        return result

    def __len__(self) -> int:
        return len(self._memo)


def trapdoor_chain(public) -> TrapdoorChainCache:
    """The per-process chain cache for one public key (shared across clouds)."""
    key = (public.modulus, public.exponent)
    cache = _TRAPDOOR_CHAINS.get(key)
    if cache is None:
        cache = _TRAPDOOR_CHAINS[key] = TrapdoorChainCache(public)
    elif cache.public is None:
        cache.public = public  # backfill a cache rebuilt from a worker export
    return cache


# ------------------------------------------------------ batched membership check

def multi_exp(pairs: list[tuple[int, int]], modulus: int, window: int = 4) -> int:
    """Simultaneous multi-exponentiation ``prod_i base_i^exp_i mod modulus``.

    One shared squaring chain (the length of the *longest* exponent) plus
    per-base digit multiplications, instead of a full square-and-multiply
    per base — the classic interleaved ``2^w``-ary method.
    """
    if any(exp < 0 for _, exp in pairs):
        raise ValueError("multi_exp exponents must be non-negative")
    live = [(base % modulus, exp) for base, exp in pairs if exp > 0]
    if not live:
        return 1 % modulus
    perfstats.incr("multi_exp.calls")
    perfstats.incr("multi_exp.bases", len(live))
    backend = modmath.active_backend()
    wrap = backend.wrap
    modulus_w = wrap(modulus)
    one = wrap(1)
    mask = (1 << window) - 1
    tables: list[list[int]] = []
    for base, _ in live:
        base = wrap(base)
        table = [one, base]
        for _ in range(mask - 1):
            table.append(table[-1] * base % modulus_w)
        tables.append(table)
    max_bits = max(exp.bit_length() for _, exp in live)
    n_digits = (max_bits + window - 1) // window
    result = one
    for j in range(n_digits - 1, -1, -1):
        if result != one:
            for _ in range(window):
                result = result * result % modulus_w
        shift = j * window
        for (base, exp), table in zip(live, tables):
            d = (exp >> shift) & mask
            if d:
                result = result * table[d] % modulus_w
    return backend.unwrap(result)


def _batch_coefficient(accumulated: int, index: int, prime: int, witness: int) -> int:
    """Deterministic 64-bit Fiat-Shamir coefficient for one batch item.

    The hashed material uses the repo's length-prefixed framing so the
    encoding of the ``(accumulated, index, prime, witness)`` tuple is
    injective — raw big-endian integers joined by a separator byte are not,
    since integer bytes can contain the separator themselves.
    """
    material = encode_parts(
        b"batch-vermem",
        *(
            value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
            for value in (accumulated, index, prime, witness)
        ),
    )
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big") | 1


def batch_verify_membership(
    modulus: int, accumulated: int, items: list[tuple[int, int]]
) -> bool:
    """One-pass check that every ``witness^prime == Ac`` (``items`` =
    ``(prime, witness_value)`` pairs).  **Trusted inputs only.**

    Uses the small-coefficient batching argument: with coefficients
    ``r_i``, ``prod_i (w_i^{x_i})^{r_i} == Ac^{sum r_i}``.  Completeness is
    exact (correct witnesses always pass), and a ``False`` means at least
    one equation genuinely fails — callers fall back to per-item checks, so
    a batch reject never mislabels an honest witness.

    Soundness against an *adversarial* prover, however, does not hold in
    ``Z_n*``: the group has the order-2 subgroup ``{±1}``, and a prover
    that negates an even number of witnesses (``w → n−w``) contributes
    ``(-1)^{x_i·r_i}`` factors that cancel pairwise (primes and the forced
    odd coefficients are odd), so the aggregate accepts while every
    per-item ``VerifyMem`` rejects.  Deriving the coefficients by
    Fiat-Shamir does not close the gap — the prover can grind flip subsets
    offline until the parities cancel — and neither does squaring into
    ``QR_n`` (it erases exactly the sign being forged).  The check is
    therefore only used where witnesses come from a party that cannot gain
    by fooling itself: self-checks over locally computed witness caches
    (see ``CloudServer``) and benchmark equivalence harnesses.  The
    adversarial-facing verifier (``repro.core.verify``) stays per-item.
    """
    if not items:
        return True
    if any(prime < 2 for prime, _ in items):
        return False
    perfstats.incr("batch_verify.calls")
    perfstats.incr("batch_verify.witnesses", len(items))
    coefficients = [
        _batch_coefficient(accumulated, i, prime, witness)
        for i, (prime, witness) in enumerate(items)
    ]
    lhs = multi_exp(
        [(witness, prime * r) for (prime, witness), r in zip(items, coefficients)],
        modulus,
    )
    rhs = modmath.powmod(accumulated % modulus, sum(coefficients), modulus)
    return lhs == rhs


# ----------------------------------------------- cross-process cache warm-back

class _CacheFamily:
    """Hooks one externally owned cache family into the warm-back machinery."""

    __slots__ = ("mark", "export_since", "absorb", "clear", "size")

    def __init__(self, mark, export_since, absorb, clear=None, size=None) -> None:
        self.mark = mark
        self.export_since = export_since
        self.absorb = absorb
        self.clear = clear
        self.size = size


#: Cache families registered from outside this module (e.g. the cloud's
#: epoch-suffix entry cache in :mod:`repro.core.entry_cache` — crypto cannot
#: import core, so the dependency points the other way).
_FAMILIES: dict[str, _CacheFamily] = {}

_BUILTIN_FAMILY_KEYS = {"hash", "trapdoor"}


def register_cache_family(
    name: str, *, mark, export_since, absorb, clear=None, size=None
) -> None:
    """Register an external cache family with the mark/export/absorb plumbing.

    ``mark()`` returns an opaque position marker, ``export_since(mark)`` the
    entries added since it (empty dict when nothing), ``absorb(export)``
    folds a worker export in (first write wins, no counters).  ``clear`` and
    ``size`` optionally hook :func:`clear_caches` / :func:`cache_sizes`.
    Registration is idempotent per name — module re-imports just re-bind.
    """
    if name in _BUILTIN_FAMILY_KEYS:
        raise ValueError(f"cache family name {name!r} is reserved")
    _FAMILIES[name] = _CacheFamily(mark, export_since, absorb, clear, size)


def cache_mark() -> dict:
    """Position marker over the exportable caches (see :func:`export_since`).

    Marks are entry counts per memo dict.  Python dicts preserve insertion
    order, so "everything after position k" is exactly "everything added
    since the mark was taken" — as long as no eviction rotated the front.
    Evictions start at 2^16 entries per memo, far beyond any workload that
    fans out, and :func:`export_since` falls back to a full export when one
    is detected.
    """
    mark = {
        "hash": {key: len(memo) for key, memo in _HASH_MEMOS.items()},
        "trapdoor": {key: len(cache._memo) for key, cache in _TRAPDOOR_CHAINS.items()},
    }
    for name, family in _FAMILIES.items():
        mark[name] = family.mark()
    return mark


def export_since(mark: dict) -> dict:
    """Memo entries added since ``mark`` — the worker half of warm-back.

    A forked worker inherits the parent's caches, populates its own copies,
    and dies with them; without this, a parallel run leaves the parent
    colder than the identical serial run, and the *next* operation's
    hit/miss counters diverge between worker configs.  Workers therefore
    ship the new entries home alongside their results and counter delta.

    Only the hash-to-prime memos and trapdoor-chain memos export: they are
    the two caches worker tasks touch, and their keys/values are plain
    bytes/ints.  Fixed-base tables are parent-side only (worker tasks use
    built-in ``pow``).
    """
    hash_marks = mark.get("hash", {})
    trapdoor_marks = mark.get("trapdoor", {})
    export_hash: dict = {}
    for key, memo in _HASH_MEMOS.items():
        seen = hash_marks.get(key, 0)
        if len(memo) < seen:
            seen = 0  # eviction rotated the dict: export everything
        if len(memo) > seen:
            items = list(memo.items())
            export_hash[key] = items[seen:]
    export_trapdoor: dict = {}
    for key, cache in _TRAPDOOR_CHAINS.items():
        memo = cache._memo
        seen = trapdoor_marks.get(key, 0)
        if len(memo) < seen:
            seen = 0
        if len(memo) > seen:
            items = list(memo.items())
            export_trapdoor[key] = items[seen:]
    out: dict = {}
    if export_hash or export_trapdoor:
        out = {"hash": export_hash, "trapdoor": export_trapdoor}
    for name, family in _FAMILIES.items():
        data = family.export_since(mark.get(name, {}))
        if data:
            out[name] = data
    return out


def absorb_cache_export(export: dict) -> None:
    """Fold a worker's :func:`export_since` result in (the parent half).

    Idempotent and order-independent: every cache memoizes a pure
    deterministic function, so an entry arriving twice (two chunks from the
    same worker, or two workers deriving the same key) carries the same
    value; first write wins.  No counters move here — absorption is cache
    state transfer, not cache activity.
    """
    if not export:
        return
    for key, items in export.get("hash", {}).items():
        memo = _HASH_MEMOS.setdefault(key, {})
        for data, result in items:
            if data not in memo:
                if len(memo) >= HASH_MEMO_MAX:
                    del memo[next(iter(memo))]
                memo[data] = result
    for key, items in export.get("trapdoor", {}).items():
        cache = _TRAPDOOR_CHAINS.get(key)
        if cache is None:
            cache = _TRAPDOOR_CHAINS[key] = TrapdoorChainCache()
        memo = cache._memo
        for trapdoor, image in items:
            if trapdoor not in memo:
                if len(memo) >= TRAPDOOR_CACHE_MAX:
                    del memo[next(iter(memo))]
                memo[trapdoor] = image
    for name, family in _FAMILIES.items():
        data = export.get(name)
        if data:
            family.absorb(data)


# ------------------------------------------------------------------- lifecycle

def hash_memo_items(prime_bits: int, domain: bytes = b"H_prime") -> list:
    """Snapshot of one ``H_prime`` memo's entries, in insertion order.

    Serves warm-restart checkpoints (the cloud persists its memo slice and
    feeds it back through :func:`absorb_cache_export` on reopen); insertion
    order is preserved so FIFO eviction behaves identically after a restart.
    """
    memo = _HASH_MEMOS.get((prime_bits, domain))
    return list(memo.items()) if memo else []


def trapdoor_chain_items(public) -> list[tuple[bytes, bytes]]:
    """Snapshot of one public key's trapdoor-chain memo, in insertion order."""
    cache = _TRAPDOOR_CHAINS.get((public.modulus, public.exponent))
    return list(cache._memo.items()) if cache is not None else []


def clear_caches() -> None:
    """Drop every process-local kernel cache (benchmarks' cold-path reset)."""
    global _WNAF_LAST
    _HASH_MEMOS.clear()
    _FIXED_BASES.clear()
    _TRAPDOOR_CHAINS.clear()
    _WNAF_LAST = None
    for family in _FAMILIES.values():
        if family.clear is not None:
            family.clear()


def cache_sizes() -> dict[str, int]:
    """Entry counts per cache family — reported next to benchmark timings."""
    sizes = {
        "hash_to_prime": sum(len(m) for m in _HASH_MEMOS.values()),
        "fixed_base_tables": sum(
            len(t) for kernel in _FIXED_BASES.values() for t in kernel._tables.values()
        ),
        "trapdoor_chain": sum(len(c) for c in _TRAPDOOR_CHAINS.values()),
        "wnaf_tables": 0
        if _WNAF_LAST is None
        else sum(len(pos) + len(neg) for pos, neg in _WNAF_LAST._tables.values()),
    }
    for name, family in _FAMILIES.items():
        if family.size is not None:
            sizes[f"{name}_cache"] = family.size()
    return sizes
