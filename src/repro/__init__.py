"""repro — a from-scratch reproduction of *Slicer: Verifiable, Secure and
Fair Search over Encrypted Numerical Data Using Blockchain* (ICDCS 2022).

Quickstart::

    from repro import SlicerSystem, SlicerParams, Query, make_database

    params = SlicerParams.testing(value_bits=8)
    system = SlicerSystem(params)
    system.setup(make_database([("r1", 41), ("r2", 7)], bits=8))
    outcome = system.search(Query.parse(10, ">"))   # records with value < 10
    assert outcome.verified and len(outcome.record_ids) == 1

Subpackages: :mod:`repro.sore` (the order-revealing encryption),
:mod:`repro.core` (the SSE protocol), :mod:`repro.crypto` (primitives),
:mod:`repro.blockchain` (the simulated chain), :mod:`repro.baselines`
(comparators), :mod:`repro.workloads` (generators) and :mod:`repro.analysis`
(measurement/reporting).
"""

from .core import (
    And,
    AttributedDatabase,
    Database,
    DataOwner,
    DataUser,
    CloudServer,
    DualInstanceSlicer,
    MaliciousCloud,
    MatchCondition,
    Misbehavior,
    Query,
    Range,
    RangeQuery,
    SlicerParams,
    make_database,
)
from .core.audit import AuditRecord, ThirdPartyAuditor
from .dual_system import DualSearchOutcome, DualSlicerSystem
from .planner import QueryPlan, compile_plan, compile_plans
from .sharding import HashShardPlan, ShardPlan, ShardedCloudFrontend
from .sore import OrderCondition, SoreScheme
from .system import PlanOutcome, RangeOutcome, SearchOutcome, SlicerSystem

__version__ = "1.0.0"

__all__ = [
    "And",
    "AttributedDatabase",
    "AuditRecord",
    "CloudServer",
    "Database",
    "DataOwner",
    "DataUser",
    "DualInstanceSlicer",
    "DualSearchOutcome",
    "DualSlicerSystem",
    "HashShardPlan",
    "ShardPlan",
    "ShardedCloudFrontend",
    "ThirdPartyAuditor",
    "MaliciousCloud",
    "MatchCondition",
    "Misbehavior",
    "OrderCondition",
    "PlanOutcome",
    "Query",
    "QueryPlan",
    "Range",
    "RangeOutcome",
    "RangeQuery",
    "SearchOutcome",
    "SlicerParams",
    "SlicerSystem",
    "SoreScheme",
    "compile_plan",
    "compile_plans",
    "make_database",
    "__version__",
]
