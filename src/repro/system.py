"""End-to-end Slicer deployment: the Fig. 1 workflow in one object.

:class:`SlicerSystem` wires the four parties together:

* **data owner** — builds/updates indexes and ADS, pushes ``Ac`` on chain,
* **data user** — funds searches, generates tokens, decrypts results,
* **cloud** — stores the index, executes searches, produces VOs,
* **blockchain** — escrows payment and publicly verifies results.

The search flow follows the paper exactly: user posts tokens + payment to
the contract; the cloud reads them, searches, and submits results + VOs;
the contract verifies and settles (payment to the cloud on success, refund
on failure).  Inject a :class:`~repro.core.cloud.MaliciousCloud` to watch
the refund path fire — that is the fairness property.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .blockchain.chain import Blockchain
from .blockchain.slicer_contract import (
    SlicerContract,
    response_to_chain_args,
    tokens_digest_input,
)
from .blockchain.transaction import Receipt
from .common.errors import StateError
from .common.rng import DeterministicRNG, default_rng
from .core.cloud import CloudServer, SearchResponse
from .core.owner import DataOwner, OwnerOutput
from .core.params import SlicerParams
from .core.query import Query
from .core.records import AttributedDatabase, Database
from .core.user import DataUser, RangeQuery
from .core.tokens import SearchToken

DEFAULT_FUNDING = 10**9
DEFAULT_PAYMENT = 10**6


@dataclass
class SearchOutcome:
    """Everything one on-chain search produced."""

    query: Query
    query_id: int
    tokens: list[SearchToken]
    response: SearchResponse
    verified: bool
    record_ids: set[bytes]
    submit_receipt: Receipt
    settle_receipt: Receipt

    @property
    def settle_gas(self) -> int:
        return self.settle_receipt.gas_used


@dataclass
class RangeOutcome:
    """A two-sided range search: one verified outcome per side."""

    sides: list[SearchOutcome] = field(default_factory=list)

    @property
    def verified(self) -> bool:
        return all(s.verified for s in self.sides)

    @property
    def record_ids(self) -> set[bytes]:
        if not self.sides:
            return set()
        out = set(self.sides[0].record_ids)
        for side in self.sides[1:]:
            out &= side.record_ids
        return out


class SlicerSystem:
    """A full deployment of the four-party framework."""

    def __init__(
        self,
        params: SlicerParams | None = None,
        chain: Blockchain | None = None,
        cloud: CloudServer | None = None,
        rng: DeterministicRNG | None = None,
    ) -> None:
        self.params = params or SlicerParams()
        self.rng = rng or default_rng()
        self.chain = chain or Blockchain()
        self.owner = DataOwner(self.params, rng=self.rng.spawn())
        self.cloud = cloud or CloudServer(self.params, self.owner.keys.trapdoor.public)

        self.owner_address = self.chain.create_account("data-owner", DEFAULT_FUNDING)
        self.user_address = self.chain.create_account("data-user", DEFAULT_FUNDING)
        self.cloud_address = self.chain.create_account("cloud", DEFAULT_FUNDING)

        self.contract: SlicerContract | None = None
        self.deploy_receipt: Receipt | None = None
        self.user: DataUser | None = None
        #: Additional authorised users: label -> (chain address, DataUser).
        self.extra_users: dict[str, tuple[bytes, DataUser]] = {}
        self._last_user_package = None

    # ---------------------------------------------------------------- setup

    def setup(self, database: Database | AttributedDatabase) -> OwnerOutput:
        """Owner builds everything and deploys the contract (Fig. 1 step 1)."""
        output = self.owner.build(database)
        self.cloud.install(output.cloud_package)
        self.contract, self.deploy_receipt = self.chain.deploy(
            self.owner_address,
            SlicerContract,
            args=(self.owner_address, self.cloud_address, output.chain_ads),
            config={"params": self.params.public()},
        )
        if not self.deploy_receipt.status:
            raise StateError(f"contract deployment failed: {self.deploy_receipt.revert_reason}")
        self.user = DataUser(self.params, output.user_package, self.rng.spawn())
        self._last_user_package = output.user_package
        self.chain.mine()
        return output

    def authorize_user(self, label: str, funding: int = DEFAULT_FUNDING) -> DataUser:
        """Authorise another data user (the paper's multi-user setting).

        The owner shares keys + current trapdoor state; the new user gets a
        funded chain account and can search independently — freshness is
        anchored by the on-chain digest, not by talking to the owner.
        """
        self._require_setup()
        if label in self.extra_users:
            raise StateError(f"user {label!r} already authorised")
        address = self.chain.create_account(f"user-{label}", funding)
        user = DataUser(self.params, self.owner.user_package(), self.rng.spawn())
        self.extra_users[label] = (address, user)
        return user

    def insert(self, additions: Database | AttributedDatabase) -> Receipt:
        """Owner inserts records and refreshes the on-chain ADS digest."""
        contract = self._require_setup()
        output = self.owner.insert(additions)
        self.cloud.install(output.cloud_package)
        assert self.user is not None
        self.user.refresh(output.user_package)
        for _, extra in self.extra_users.values():
            extra.refresh(output.user_package)
        self._last_user_package = output.user_package
        receipt = self.chain.call(
            self.owner_address, contract, "update_ads", (output.chain_ads,)
        )
        if not receipt.status:
            raise StateError(f"ADS update reverted: {receipt.revert_reason}")
        self.chain.mine()
        return receipt

    # --------------------------------------------------------------- search

    def search(
        self, query: Query, payment: int = DEFAULT_PAYMENT, as_user: str | None = None
    ) -> SearchOutcome:
        """The full paid, publicly-verified search flow (Fig. 1 steps 2-5).

        ``as_user`` selects an extra authorised user (see
        :meth:`authorize_user`); by default the primary user searches.
        """
        contract = self._require_setup()
        assert self.user is not None
        if as_user is None:
            searcher, searcher_address = self.user, self.user_address
        else:
            searcher_address, searcher = self.extra_users[as_user]

        tokens = searcher.make_tokens(query)
        submit_receipt = self.chain.call(
            searcher_address,
            contract,
            "submit_query",
            (tokens_digest_input(tokens),),
            value=payment,
        )
        if not submit_receipt.status:
            raise StateError(f"query submission reverted: {submit_receipt.revert_reason}")
        query_id = submit_receipt.return_value

        response = self.cloud.search(tokens)
        settle_receipt = self.chain.call(
            self.cloud_address,
            contract,
            "verify_and_settle",
            (query_id, self.cloud.ads_value, response_to_chain_args(response)),
        )
        verified = bool(settle_receipt.status and settle_receipt.return_value)
        record_ids = searcher.decrypt_results(response) if verified else set()
        self.chain.mine()
        return SearchOutcome(
            query=query,
            query_id=query_id,
            tokens=tokens,
            response=response,
            verified=verified,
            record_ids=record_ids,
            submit_receipt=submit_receipt,
            settle_receipt=settle_receipt,
        )

    def range_search(self, range_query: RangeQuery, payment: int = DEFAULT_PAYMENT) -> RangeOutcome:
        """Two-sided range = one verified search per side, intersected."""
        queries = range_query.to_queries(self.params.value_bits)
        return RangeOutcome([self.search(q, payment) for q in queries])

    def batch_search(
        self, queries: list[Query], payment: int = DEFAULT_PAYMENT
    ) -> list[SearchOutcome]:
        """Run several queries, settled by ONE batched contract call.

        Gas-amortised extension: n queries share one settlement transaction
        (see :meth:`SlicerContract.batch_verify_and_settle`).
        """
        contract = self._require_setup()
        assert self.user is not None

        staged = []
        for query in queries:
            tokens = self.user.make_tokens(query)
            submit = self.chain.call(
                self.user_address,
                contract,
                "submit_query",
                (tokens_digest_input(tokens),),
                value=payment,
            )
            if not submit.status:
                raise StateError(f"query submission reverted: {submit.revert_reason}")
            response = self.cloud.search(tokens)
            staged.append((query, submit, tokens, response))

        settle = self.chain.call(
            self.cloud_address,
            contract,
            "batch_verify_and_settle",
            (
                [s.return_value for _, s, _, _ in staged],
                self.cloud.ads_value,
                [response_to_chain_args(r) for _, _, _, r in staged],
            ),
        )
        verdicts = settle.return_value if settle.status else [False] * len(staged)
        outcomes = []
        for (query, submit, tokens, response), verified in zip(staged, verdicts):
            outcomes.append(
                SearchOutcome(
                    query=query,
                    query_id=submit.return_value,
                    tokens=tokens,
                    response=response,
                    verified=bool(verified),
                    record_ids=self.user.decrypt_results(response) if verified else set(),
                    submit_receipt=submit,
                    settle_receipt=settle,
                )
            )
        self.chain.mine()
        return outcomes

    # -------------------------------------------------------------- helpers

    def balances(self) -> dict[str, int]:
        return {
            "owner": self.chain.balance(self.owner_address),
            "user": self.chain.balance(self.user_address),
            "cloud": self.chain.balance(self.cloud_address),
        }

    def _require_setup(self) -> SlicerContract:
        if self.contract is None:
            raise StateError("call setup() before using the system")
        return self.contract
