"""End-to-end Slicer deployment: the Fig. 1 workflow in one object.

:class:`SlicerSystem` wires the four parties together:

* **data owner** — builds/updates indexes and ADS, pushes ``Ac`` on chain,
* **data user** — funds searches, generates tokens, decrypts results,
* **cloud** — stores the index, executes searches, produces VOs,
* **blockchain** — escrows payment and publicly verifies results.

The search flow follows the paper exactly: user posts tokens + payment to
the contract; the cloud reads them, searches, and submits results + VOs;
the contract verifies and settles (payment to the cloud on success, refund
on failure).  Inject a :class:`~repro.core.cloud.MaliciousCloud` to watch
the refund path fire — that is the fairness property.

Two delivery modes coexist:

* **direct** (default, ``transport=None``) — the in-process calls this file
  always had, byte-identical to before the chaos layer existed;
* **chaos** — pass a :class:`~repro.chaos.ChaosTransport` (or export
  ``REPRO_CHAOS=1``) and every party boundary serializes through
  :mod:`repro.core.wire`, crosses the fault-injecting transport, and is
  wrapped in a :class:`~repro.chaos.RetryPolicy` with idempotent
  re-submission.  When the retry budget runs out the search degrades to a
  :class:`SearchOutcome` error state instead of raising.

Orthogonally to delivery, ``settlement_mode`` picks how settlements reach
the chain:

* ``"sync"`` (default) — every contract call executes immediately and each
  search mines its own block, byte-identical to before block production
  existed;
* ``"block"`` — settlement transactions stage in a
  :class:`~repro.blockchain.mempool.Mempool` and a
  :class:`~repro.blockchain.block_builder.BlockBuilder` packs them into
  blocks (fee-ordered, gas-budgeted); a :class:`~repro.chaos.ChainFaultPlan`
  can reorg sealed blocks or delay staged settlements.  Verdicts, balances,
  gas and the deterministic counter snapshot are bit-identical to sync mode
  — block production moves *when* a settlement lands, never *how* it
  settles — and each outcome records the block height it settled at, which
  a light client can check against the header's settlement root without
  replaying the chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .blockchain.block_builder import BlockBuilder
from .blockchain.chain import Blockchain
from .blockchain.mempool import Mempool
from .blockchain.proofs import SettlementProof, prove_settlement
from .blockchain.slicer_contract import (
    SlicerContract,
    response_to_chain_args,
    tokens_digest_input,
)
from .blockchain.transaction import Receipt
from .chaos import (
    CLOUD_TO_CONTRACT,
    CONTRACT_TO_CLOUD,
    OWNER_TO_CLOUD,
    OWNER_TO_CONTRACT,
    USER_TO_CONTRACT,
    ChaosTransport,
    RetryPolicy,
    chaos_enabled,
    shard_channel,
)
from .common import perfstats
from .common.encoding import encode_uint
from .common.errors import RetryExhausted, StateError, TransientChainError
from .crypto import kernels
from .obs import audit as obs_audit
from .obs import metrics, trace
from .obs.audit import VERDICT_DEGRADED, VERDICT_PAID, VERDICT_REFUNDED
from .common.rng import DeterministicRNG, default_rng
from .core import wire
from .core.cloud import CloudServer, SearchResponse
from .core.owner import DataOwner, OwnerOutput
from .core.params import SlicerParams
from .core.query import Query
from .core.records import AttributedDatabase, Database
from .core.state import CloudPackage
from .core.user import DataUser, RangeQuery
from .core.tokens import SearchToken
from .planner import PlanExpr, QueryPlan, compile_plans
from .sharding import (
    HashShardPlan,
    ShardedCloudFrontend,
    dump_shard_package,
    load_shard_package,
)
from .storage import codec, state_io

DEFAULT_FUNDING = 10**9
DEFAULT_PAYMENT = 10**6

#: Gas allowance a block-mode settlement transaction declares.  Block
#: packing budgets by declared limits, so this is what lets one block carry
#: many settlements (vs. the 30M default that fills a block with one tx).
#: Roughly 10x the largest ``verify_and_settle`` bill seen at bench scale;
#: an overflow is a loud failure, never a silent verdict flip.
SETTLE_GAS_LIMIT = 4_000_000

#: Liveness backstop for the block-mode settle loop: far above any chain
#: fault profile's maximum delay, so hitting it means a genuine bug.
MAX_SETTLE_ROUNDS = 64


@dataclass(frozen=True)
class DeliveryFailure:
    """Structured attribution for a degraded search.

    ``error`` on :class:`SearchOutcome` stays a human-readable string (and
    the fingerprint tests rely on that); this carries what the string
    flattens away: the exception class, which retried operation gave up,
    and the index into the chaos :class:`~repro.chaos.faults.FaultPlan`
    history of the injection that exhausted the budget.
    """

    error_type: str
    message: str
    label: str | None = None
    attempts: int | None = None
    fault_step: int | None = None

    @classmethod
    def from_exception(cls, exc: RetryExhausted) -> "DeliveryFailure":
        cause = exc.last_error if exc.last_error is not None else exc.__cause__
        return cls(
            error_type=type(cause).__name__ if cause is not None else type(exc).__name__,
            message=str(exc),
            label=exc.label,
            attempts=exc.attempts,
            fault_step=exc.fault_step,
        )


@dataclass
class SearchOutcome:
    """Everything one on-chain search produced.

    Under chaos delivery a search can *degrade* instead of settling: when
    the retry budget is exhausted ``error`` carries the reason (and
    ``failure`` its structured form), ``verified`` is False, and the
    receipt/response fields for the legs that never completed are None.
    Direct-mode outcomes always have ``error is None`` and every field
    populated.
    """

    query: Query
    query_id: int
    tokens: list[SearchToken]
    response: SearchResponse | None
    verified: bool
    record_ids: set[bytes]
    submit_receipt: Receipt | None
    settle_receipt: Receipt | None
    #: Degradation reason when delivery gave up; None on a settled search.
    error: str | None = None
    #: Delivery attempts consumed across the submit and settle phases.
    attempts: int = 1
    #: Structured failure attribution (exception class, retried label,
    #: FaultPlan step); None unless the search degraded.
    failure: DeliveryFailure | None = None
    #: Block number the settlement landed in (block settlement mode only;
    #: None under synchronous settlement or when the search degraded).
    settle_height: int | None = None

    @property
    def settled(self) -> bool:
        """Whether the escrow closed on chain (paid or refunded)."""
        return self.settle_receipt is not None and bool(self.settle_receipt.status)

    @property
    def settle_gas(self) -> int:
        assert self.settle_receipt is not None, "search never settled"
        return self.settle_receipt.gas_used


@dataclass
class RangeOutcome:
    """A two-sided range search: one verified outcome per side."""

    sides: list[SearchOutcome] = field(default_factory=list)

    @property
    def verified(self) -> bool:
        return all(s.verified for s in self.sides)

    @property
    def record_ids(self) -> set[bytes]:
        if not self.sides:
            return set()
        out = set(self.sides[0].record_ids)
        for side in self.sides[1:]:
            out &= side.record_ids
        return out


@dataclass
class PlanOutcome:
    """One executed query plan: a verified outcome per leg, intersected.

    Every leg is an independent on-chain escrow, so a tampered leg refunds
    exactly the queries it served and flips only this plan's ``verified``
    — sibling plans in the same batch keep their verdicts.  ``record_ids``
    is the intersection of the decrypted per-leg ID sets, and is only
    meaningful (non-empty-able) when every leg verified: an unverified
    leg's result set is untrusted, so the plan answers nothing.
    """

    plan: QueryPlan
    legs: list[SearchOutcome] = field(default_factory=list)

    @property
    def verified(self) -> bool:
        return all(leg.verified for leg in self.legs)

    @property
    def record_ids(self) -> set[bytes]:
        if not self.legs or not self.verified:
            return set()
        out = set(self.legs[0].record_ids)
        for leg in self.legs[1:]:
            out &= leg.record_ids
        return out


class SlicerSystem:
    """A full deployment of the four-party framework."""

    def __init__(
        self,
        params: SlicerParams | None = None,
        chain: Blockchain | None = None,
        cloud: CloudServer | None = None,
        rng: DeterministicRNG | None = None,
        owner: DataOwner | None = None,
        transport: ChaosTransport | None = None,
        retry: RetryPolicy | None = None,
        shards: int = 1,
        shard_plan=None,
        account_tag: str | None = None,
        env_transport: bool = True,
        settlement_mode: str = "sync",
        chain_faults=None,
        settle_gas_limit: int = SETTLE_GAS_LIMIT,
        store_dir=None,
    ) -> None:
        self.params = params or SlicerParams()
        self.rng = rng or default_rng()
        self.chain = chain or Blockchain()
        self.owner = owner or DataOwner(self.params, rng=self.rng.spawn())

        # Settlement delivery: "sync" executes and mines per call (the
        # byte-identity reference); "block" stages settlements in a mempool
        # and produces blocks, optionally under a ChainFaultPlan.
        if settlement_mode not in ("sync", "block"):
            raise StateError(f"unknown settlement_mode {settlement_mode!r}")
        if chain_faults is not None and settlement_mode != "block":
            raise StateError("chain_faults requires settlement_mode='block'")
        self.settlement_mode = settlement_mode
        self.settle_gas_limit = settle_gas_limit
        self.mempool: Mempool | None = None
        self.builder: BlockBuilder | None = None
        if settlement_mode == "block":
            self.mempool = Mempool(self.chain)
            self.builder = BlockBuilder(self.chain, self.mempool, fault_plan=chain_faults)

        # Chaos delivery (opt-in): None keeps the direct in-process path
        # bit-for-bit identical to the pre-chaos system.  ``env_transport=
        # False`` also opts out of the REPRO_CHAOS auto-detection (multi-
        # system deployments that must stay direct regardless of env).
        if transport is None and env_transport and chaos_enabled():
            transport = ChaosTransport.from_env()
        self.transport = transport
        self.retry = retry or RetryPolicy()

        # Sharded serving tier (opt-in): shards > 1 or an explicit plan
        # replaces the single cloud with a scatter/gather frontend whose
        # merged output is byte-identical to the single-cloud path.
        plan = shard_plan
        if plan is None and shards > 1:
            plan = HashShardPlan(shards)
        if cloud is None:
            if plan is not None:
                cloud = ShardedCloudFrontend(
                    self.params,
                    self.owner.keys.trapdoor.public,
                    plan,
                    transport=self.transport,
                    retry=self.retry,
                )
            else:
                cloud = CloudServer(self.params, self.owner.keys.trapdoor.public)
        self.cloud = cloud
        self._sharded = isinstance(self.cloud, ShardedCloudFrontend)
        if self._sharded:
            # The owner pre-splits every delta along the tier's plan (the
            # tier cannot: routing needs G1, which PRF labels hide).
            self.owner.shard_plan = self.cloud.plan
        if store_dir is not None:
            # Durable epoch-segment store(s): every install appends a
            # segment, and the chaos crash hook restarts *from the store*
            # instead of the monolithic snapshot (warm when checkpointed).
            self.cloud.attach_store(store_dir)

        tag = account_tag
        self.owner_address = self.chain.create_account(
            f"{tag}-owner" if tag else "data-owner", DEFAULT_FUNDING
        )
        self.user_address = self.chain.create_account(
            f"{tag}-user" if tag else "data-user", DEFAULT_FUNDING
        )
        self.cloud_address = self.chain.create_account(
            f"{tag}-cloud" if tag else "cloud", DEFAULT_FUNDING
        )

        self.contract: SlicerContract | None = None
        self.deploy_receipt: Receipt | None = None
        self.user: DataUser | None = None
        #: Additional authorised users: label -> (chain address, DataUser).
        self.extra_users: dict[str, tuple[bytes, DataUser]] = {}
        self._last_user_package = None

        self._cloud_snapshot: bytes | None = None
        self._chaos_op = 0
        #: Block heights chaos-delivered settlements landed at, by query id
        #: (the chaos settle handler runs inside ``transport.deliver`` and
        #: cannot thread the height back through the cached receipt).
        self._settle_heights: dict[int, int] = {}

    # ---------------------------------------------------------------- setup

    def setup(self, database: Database | AttributedDatabase) -> OwnerOutput:
        """Owner builds everything and deploys the contract (Fig. 1 step 1)."""
        with trace.span("setup", records=len(database.records)):
            output = self.owner.build(database)
            with trace.span("install"):
                self._install(output)
            self.contract, self.deploy_receipt = self.chain.deploy(
                self.owner_address,
                SlicerContract,
                args=(self.owner_address, self.cloud_address, output.chain_ads),
                config={"params": self.params.public()},
            )
            if not self.deploy_receipt.status:
                raise StateError(
                    f"contract deployment failed: {self.deploy_receipt.revert_reason}"
                )
            metrics.observe("setup.deploy_gas", self.deploy_receipt.gas_used)
            self.user = DataUser(self.params, output.user_package, self.rng.spawn())
            self._last_user_package = output.user_package
            self.chain.mine()
            if self.transport is not None:
                # First durable snapshot: what a crash-restarted cloud reloads.
                self._cloud_snapshot = self.cloud.snapshot()
        return output

    def authorize_user(self, label: str, funding: int = DEFAULT_FUNDING) -> DataUser:
        """Authorise another data user (the paper's multi-user setting).

        The owner shares keys + current trapdoor state; the new user gets a
        funded chain account and can search independently — freshness is
        anchored by the on-chain digest, not by talking to the owner.
        """
        self._require_setup()
        if label in self.extra_users:
            raise StateError(f"user {label!r} already authorised")
        address = self.chain.create_account(f"user-{label}", funding)
        user = DataUser(self.params, self.owner.user_package(), self.rng.spawn())
        self.extra_users[label] = (address, user)
        return user

    def insert(self, additions: Database | AttributedDatabase) -> Receipt:
        """Owner inserts records and refreshes the on-chain ADS digest."""
        contract = self._require_setup()
        with trace.span("insert", records=len(additions.records)):
            output = self.owner.insert(additions)
            with trace.span("install"):
                if self.transport is None:
                    self._install(output)
                elif self._sharded and output.shard_packages is not None:
                    self._chaos_install_shards(output.shard_packages)
                else:
                    self._chaos_install(output.cloud_package)
            assert self.user is not None
            self.user.refresh(output.user_package)
            for _, extra in self.extra_users.values():
                extra.refresh(output.user_package)
            self._last_user_package = output.user_package
            with trace.span("update_ads"):
                if self.transport is None:
                    receipt = self._chain_call(
                        self.owner_address, contract, "update_ads", (output.chain_ads,)
                    )
                else:
                    receipt = self._chaos_update_ads(contract, output.chain_ads)
            if not receipt.status:
                raise StateError(f"ADS update reverted: {receipt.revert_reason}")
            metrics.observe("insert.update_ads_gas", receipt.gas_used)
            self._mine_boundary()
        return receipt

    # --------------------------------------------------------------- search

    def search(
        self, query: Query, payment: int = DEFAULT_PAYMENT, as_user: str | None = None
    ) -> SearchOutcome:
        """The full paid, publicly-verified search flow (Fig. 1 steps 2-5).

        ``as_user`` selects an extra authorised user (see
        :meth:`authorize_user`); by default the primary user searches.
        """
        contract = self._require_setup()
        assert self.user is not None
        if as_user is None:
            searcher, searcher_address = self.user, self.user_address
        else:
            searcher_address, searcher = self.extra_users[as_user]

        mode = "direct" if self.transport is None else "chaos"
        with trace.span("search", mode=mode):
            tokens = searcher.make_tokens(query)
            if self.transport is None:
                outcome = self._search_direct(
                    contract, query, payment, tokens, searcher, searcher_address
                )
            else:
                outcome = self._search_chaos(
                    contract, query, payment, tokens, searcher, searcher_address
                )
            trace.set_attr("query_id", outcome.query_id)
            trace.set_attr("verified", outcome.verified)
            self._record_search(outcome, payment)
        return outcome

    def _search_direct(
        self, contract, query, payment, tokens, searcher, searcher_address
    ) -> SearchOutcome:
        """In-process delivery — the original, fault-free flow.

        Block settlement changes *when* things land, never what executes:
        the submit still runs immediately (journaled through the builder so
        a reorg can replay it), but the settlement stages in the mempool and
        lands when :meth:`BlockBuilder.seal_block` packs it — same sender,
        same calldata, same per-call gas metering, so the receipt is
        bit-identical to the synchronous one.
        """
        with trace.span("submit"):
            submit_receipt = self._chain_call(
                searcher_address,
                contract,
                "submit_query",
                (tokens_digest_input(tokens),),
                value=payment,
            )
        if not submit_receipt.status:
            raise StateError(f"query submission reverted: {submit_receipt.revert_reason}")
        query_id = submit_receipt.return_value

        with trace.span("cloud.search"):
            response = self.cloud.search(tokens)
        settle_height: int | None = None
        with trace.span("verify_settle"):
            if self.builder is not None:
                settle_receipt, settle_height = self._settle_block(
                    contract, [(query_id, response)]
                )[query_id]
            else:
                settle_receipt = self.chain.call(
                    self.cloud_address,
                    contract,
                    "verify_and_settle",
                    (query_id, self.cloud.ads_value, response_to_chain_args(response)),
                )
        verified = bool(settle_receipt.status and settle_receipt.return_value)
        record_ids = searcher.decrypt_results(response) if verified else set()
        if self.builder is None:
            self.chain.mine()
        return SearchOutcome(
            query=query,
            query_id=query_id,
            tokens=tokens,
            response=response,
            verified=verified,
            record_ids=record_ids,
            submit_receipt=submit_receipt,
            settle_receipt=settle_receipt,
            settle_height=settle_height,
        )

    def _search_chaos(
        self, contract, query, payment, tokens, searcher, searcher_address
    ) -> SearchOutcome:
        """Chaos delivery: every boundary crosses the fault-injecting transport.

        Three legs, each retried with deterministic backoff and idempotent
        re-submission (keyed by an operation counter, so a duplicated or
        re-sent message never double-charges the escrow):

        1. user -> contract: post tokens + payment (``submit_query``);
        2. contract -> cloud: tokens reach the cloud, which searches;
        3. cloud -> contract: response reaches ``verify_and_settle``.

        Exhausting the retry budget degrades to an error outcome instead of
        raising — the caller sees ``verified=False`` plus ``error``.
        """
        transport = self.transport
        assert transport is not None
        tokens_wire = wire.dump_tokens(tokens)
        op = self._next_op()
        attempts = {"n": 0}

        def submit_op(attempt: int) -> Receipt:
            attempts["n"] += 1
            receipt = transport.deliver(
                USER_TO_CONTRACT,
                tokens_wire,
                lambda blob: self._chain_call(
                    searcher_address,
                    contract,
                    "submit_query",
                    (tokens_digest_input(wire.load_tokens(blob)),),
                    value=payment,
                ),
                idempotency_key=("submit", op),
                cache_if=lambda r: r.status,
            )
            return receipt

        try:
            with trace.span("submit"):
                submit_receipt = self.retry.run(
                    submit_op, transport=transport, label="submit_query"
                )
        except RetryExhausted as exc:
            return self._degraded(query, tokens, exc, attempts["n"])
        if not submit_receipt.status:
            # A genuine (non-transient) revert: same contract as direct mode.
            raise StateError(f"query submission reverted: {submit_receipt.revert_reason}")
        query_id = submit_receipt.return_value

        def settle_op(attempt: int) -> tuple[bytes, Receipt]:
            attempts["n"] += 1
            # Leg 2: the cloud reads the tokens and searches.  Not cached —
            # an honest cloud's search is a pure function of its state, and
            # re-running it after a crash restart is exactly the recovery
            # path under test.  A sharded tier runs its *own* per-shard
            # transport legs inside frontend.search (channels
            # ``contract->cloud#shardK``), so the scatter is not wrapped in
            # a second tier-wide delivery here.
            with trace.span("cloud.search", attempt=attempt):
                if self._sharded:
                    response_wire = wire.dump_response(self.cloud.search(tokens))
                else:
                    response_wire = transport.deliver(
                        CONTRACT_TO_CLOUD,
                        tokens_wire,
                        lambda blob: wire.dump_response(self.cloud.search(wire.load_tokens(blob))),
                        on_crash=self._restart_cloud,
                    )
            # Leg 3: response + current Ac to the contract for settlement.
            # Under block settlement the delivered handler stages the tx and
            # runs seal rounds until it lands; the idempotency key stays the
            # op-scoped one (a duplicated message must not re-settle), while
            # the mempool tx id is *attempt*-scoped — a retry after a
            # transient revert is a new staging, not a duplicate.
            if self.builder is not None:
                settle_handler = lambda blob: self._chaos_block_settle(
                    contract, query_id, blob, op, attempt
                )
            else:
                settle_handler = lambda blob: self.chain.call(
                    self.cloud_address,
                    contract,
                    "verify_and_settle",
                    (
                        query_id,
                        self.cloud.ads_value,
                        response_to_chain_args(wire.load_response(blob)),
                    ),
                )
            with trace.span("verify_settle", attempt=attempt):
                receipt = transport.deliver(
                    CLOUD_TO_CONTRACT,
                    response_wire,
                    settle_handler,
                    idempotency_key=("settle", op),
                    cache_if=lambda r: r.status,
                    on_crash=self._restart_cloud,
                )
                if not receipt.status:
                    # Reverts leave the query open (state rolled back), so
                    # the settlement can be retried — e.g. after a crash
                    # restart briefly served a stale Ac.
                    raise TransientChainError(f"settle reverted: {receipt.revert_reason}")
            return response_wire, receipt

        try:
            response_wire, settle_receipt = self.retry.run(
                settle_op, transport=transport, label="verify_and_settle"
            )
        except RetryExhausted as exc:
            return self._degraded(
                query,
                tokens,
                exc,
                attempts["n"],
                query_id=query_id,
                submit_receipt=submit_receipt,
            )

        response = wire.load_response(response_wire)
        verified = bool(settle_receipt.return_value)
        record_ids = searcher.decrypt_results(response) if verified else set()
        if self.builder is None:
            self.chain.mine()
        return SearchOutcome(
            query=query,
            query_id=query_id,
            tokens=tokens,
            response=response,
            verified=verified,
            record_ids=record_ids,
            submit_receipt=submit_receipt,
            settle_receipt=settle_receipt,
            attempts=attempts["n"],
            settle_height=self._settle_heights.get(query_id),
        )

    def _degraded(
        self,
        query: Query,
        tokens: list[SearchToken],
        exc: RetryExhausted,
        attempts: int,
        query_id: int = -1,
        submit_receipt: Receipt | None = None,
    ) -> SearchOutcome:
        """Graceful degradation: the retry budget ran out on some leg."""
        self._mine_boundary()
        return SearchOutcome(
            query=query,
            query_id=query_id,
            tokens=tokens,
            response=None,
            verified=False,
            record_ids=set(),
            submit_receipt=submit_receipt,
            settle_receipt=None,
            error=str(exc),
            attempts=attempts,
            failure=DeliveryFailure.from_exception(exc),
        )

    def _record_search(self, outcome: SearchOutcome, payment: int) -> None:
        """Fold one search into the audit log and the metrics registry.

        Called inside the search's root span, so the audit record carries
        the trace id of the span tree it corresponds to.  The verdict must
        mirror the outcome exactly: ``paid`` iff the contract verified,
        ``refunded`` iff it settled unverified, ``degraded`` iff delivery
        gave up — the chaos property tests assert this correspondence.
        """
        if outcome.error is not None:
            verdict = VERDICT_DEGRADED
        elif outcome.verified:
            verdict = VERDICT_PAID
        else:
            verdict = VERDICT_REFUNDED
        submit_gas = outcome.submit_receipt.gas_used if outcome.submit_receipt else 0
        settle_gas = outcome.settle_receipt.gas_used if outcome.settle_receipt else 0
        metrics.observe("search.tokens_posted", len(outcome.tokens))
        metrics.observe("search.result_ids", len(outcome.record_ids))
        metrics.observe("search.attempts", outcome.attempts)
        if outcome.submit_receipt is not None:
            metrics.observe("gas.submit_query", submit_gas)
        if outcome.settle_receipt is not None:
            metrics.observe("gas.verify_and_settle", settle_gas)
        failure = outcome.failure
        shard_extra = (
            {"shards": self.cloud.shards_for_tokens(outcome.tokens)}
            if self._sharded
            else {}
        )
        block_extra = (
            {"block": outcome.settle_height}
            if outcome.settle_height is not None
            else {}
        )
        obs_audit.AUDIT_LOG.append(
            query_id=str(outcome.query_id),
            verdict=verdict,
            tokens_posted=len(outcome.tokens),
            result_count=len(outcome.record_ids),
            accumulator=self.cloud.ads_value if outcome.response is not None else None,
            paid_to="cloud" if verdict == VERDICT_PAID else (
                "user" if verdict == VERDICT_REFUNDED else None
            ),
            amount=payment if verdict != VERDICT_DEGRADED else 0,
            gas=submit_gas + settle_gas,
            attempts=outcome.attempts,
            trace_id=trace.current_trace_id(),
            detail=outcome.error,
            fault_step=failure.fault_step if failure else None,
            **shard_extra,
            **block_extra,
        )

    def range_search(self, range_query: RangeQuery, payment: int = DEFAULT_PAYMENT) -> RangeOutcome:
        """Two-sided range = one verified search per side, intersected."""
        queries = range_query.to_queries(self.params.value_bits)
        return RangeOutcome([self.search(q, payment) for q in queries])

    def batch_search(
        self, queries: list[Query], payment: int = DEFAULT_PAYMENT
    ) -> list[SearchOutcome]:
        """Run several queries, settled by ONE batched contract call.

        Gas-amortised extension: n queries share one settlement transaction
        (see :meth:`SlicerContract.batch_verify_and_settle`).  Entry
        collection is batched too: all submitted queries go through one
        :meth:`CloudServer.search_many` call, which dedupes identical tokens
        *across* the staged queries and collects over the batch-wide union —
        per-query responses stay byte-identical to sequential
        :meth:`CloudServer.search` calls (the entry-cache property tests
        assert this), only the duplicated walks disappear.

        Under block settlement the amortisation moves from the transaction
        to the *block*: see :meth:`_batch_search_block`.
        """
        contract = self._require_setup()
        assert self.user is not None
        if self.builder is not None:
            return self._batch_search_block(contract, queries, payment)

        with trace.span("batch_search", queries=len(queries)):
            submitted = []
            for query in queries:
                tokens = self.user.make_tokens(query)
                with trace.span("submit"):
                    submit = self.chain.call(
                        self.user_address,
                        contract,
                        "submit_query",
                        (tokens_digest_input(tokens),),
                        value=payment,
                    )
                if not submit.status:
                    raise StateError(f"query submission reverted: {submit.revert_reason}")
                submitted.append((query, submit, tokens))
            with trace.span("cloud.search", batch=len(submitted)):
                responses = self.cloud.search_many([t for _, _, t in submitted])
            staged = [
                (query, submit, tokens, response)
                for (query, submit, tokens), response in zip(submitted, responses)
            ]

            with trace.span("verify_settle", batch=len(staged)):
                settle = self.chain.call(
                    self.cloud_address,
                    contract,
                    "batch_verify_and_settle",
                    (
                        [s.return_value for _, s, _, _ in staged],
                        self.cloud.ads_value,
                        [response_to_chain_args(r) for _, _, _, r in staged],
                    ),
                )
            metrics.observe("gas.batch_verify_and_settle", settle.gas_used)
            verdicts = settle.return_value if settle.status else [False] * len(staged)
            outcomes = []
            trace_id = trace.current_trace_id()
            for (query, submit, tokens, response), verified in zip(staged, verdicts):
                outcome = SearchOutcome(
                    query=query,
                    query_id=submit.return_value,
                    tokens=tokens,
                    response=response,
                    verified=bool(verified),
                    record_ids=self.user.decrypt_results(response) if verified else set(),
                    submit_receipt=submit,
                    settle_receipt=settle,
                )
                outcomes.append(outcome)
                verdict = VERDICT_PAID if outcome.verified else VERDICT_REFUNDED
                # Per-record gas is this query's submit tx; the shared batch
                # settlement tx is attributed once via `extra`, not inflated
                # onto every record.
                obs_audit.AUDIT_LOG.append(
                    query_id=str(outcome.query_id),
                    verdict=verdict,
                    tokens_posted=len(tokens),
                    result_count=len(outcome.record_ids),
                    accumulator=self.cloud.ads_value,
                    paid_to="cloud" if outcome.verified else "user",
                    amount=payment,
                    gas=submit.gas_used,
                    attempts=1,
                    trace_id=trace_id,
                    batch_size=len(staged),
                    batch_settle_gas=settle.gas_used,
                    **(
                        {"shards": self.cloud.shards_for_tokens(tokens)}
                        if self._sharded
                        else {}
                    ),
                )
            self.chain.mine()
        return outcomes

    # -------------------------------------------------------------- planner

    def search_plan(self, expr: PlanExpr, payment: int = DEFAULT_PAYMENT) -> PlanOutcome:
        """Compile and execute one range/conjunctive plan expression."""
        return self.search_plans([expr], payment)[0]

    def search_plans(
        self, exprs: list[PlanExpr], payment: int = DEFAULT_PAYMENT
    ) -> list[PlanOutcome]:
        """Compile a batch of plan expressions and execute all legs at once.

        The planner (:mod:`repro.planner`) reduces every expression to a
        minimal leg set; the flattened legs of the whole batch then ride
        the existing :meth:`batch_search` machinery — one per-leg escrow
        each, ONE :meth:`CloudServer.search_many` collection over the
        batch-wide token union (shared trapdoor-chain walks and PRF labels
        across legs *and* plans are paid once; behind a sharded tier the
        scatter/gather fans the union out per shard), and per-leg
        verification against the one on-chain accumulator before
        settlement, in sync or block mode alike.  Results are therefore
        byte-identical to a naive per-leg loop by construction — the
        planner only removes duplicated work, never changes any leg's
        bytes — which is what the plan ≡ naive property tests pin.

        Record-ID intersection happens here, user-side: index payloads
        carry a fresh nonce per (keyword, record) posting, so a record's
        ciphertexts are unlinkable across legs and the cloud cannot
        intersect them.  What *is* pushed to the cloud is the collection
        over all legs in one batch; what comes back per leg is the full
        verifiable result multiset the fairness guarantee needs.
        """
        plans = compile_plans(exprs, self.params.value_bits)
        flat_legs = [leg for plan in plans for leg in plan.legs]
        with trace.span("search_plans", plans=len(plans), legs=len(flat_legs)):
            outcomes = self.batch_search(flat_legs, payment)
            results: list[PlanOutcome] = []
            cursor = 0
            for plan in plans:
                legs = outcomes[cursor : cursor + len(plan.legs)]
                cursor += len(plan.legs)
                results.append(PlanOutcome(plan=plan, legs=legs))
            self._record_plans(results)
        return results

    def _record_plans(self, results: list[PlanOutcome]) -> None:
        """Planner counters (deterministic; under the exact-counter gate).

        ``planner.dedup_saved`` counts token posts the batch-wide
        ``search_many`` dedup collapsed (duplicate tokens across legs and
        plans walk the index once); ``planner.intersect_dropped`` counts
        record IDs that appeared in some leg but fell out of a verified
        plan's intersection.  Both are pure functions of the query stream,
        so they are identical at any worker count, shard width or
        settlement mode.
        """
        perfstats.incr("planner.plans", len(results))
        total_tokens = 0
        unique_tokens: set[SearchToken] = set()
        for outcome in results:
            perfstats.incr("planner.legs", len(outcome.legs))
            for leg in outcome.legs:
                total_tokens += len(leg.tokens)
                unique_tokens.update(leg.tokens)
        perfstats.incr("planner.dedup_saved", total_tokens - len(unique_tokens))
        for outcome in results:
            if outcome.verified and outcome.legs:
                union: set[bytes] = set()
                for leg in outcome.legs:
                    union |= leg.record_ids
                perfstats.incr(
                    "planner.intersect_dropped", len(union) - len(outcome.record_ids)
                )

    # ----------------------------------------------------- block settlement

    def _chain_call(self, sender, contract, method, args, value: int = 0) -> Receipt:
        """One contract call, journaled through the builder in block mode.

        Every immediate call a block-mode system makes must go through the
        builder so a reorg can deterministically re-execute it; sync mode
        falls through to the plain ``chain.call`` it always used.
        """
        if self.builder is not None:
            return self.builder.execute_now(sender, contract, method, args, value=value)
        return self.chain.call(sender, contract, method, args, value=value)

    def _mine_boundary(self) -> None:
        """The per-step block boundary: mine (sync) or seal a block (block)."""
        if self.builder is not None:
            self.builder.seal_block()
        else:
            self.chain.mine()

    def _settle_block(
        self, contract: SlicerContract, staged: list[tuple[int, SearchResponse]]
    ) -> dict[int, tuple[Receipt, int]]:
        """Stage every ``(query_id, response)`` settlement and seal until landed.

        Returns ``query_id -> (receipt, block_number)``.  One seal round
        normally lands everything; a :class:`ChainFaultPlan` delay pushes a
        staged tx past later blocks, and the round loop keeps sealing until
        it ripens — delayed, never lost.
        """
        assert self.builder is not None and self.mempool is not None
        tx_ids: dict[int, tuple] = {}
        for query_id, response in staged:
            tx_id = ("settle", self._next_op())
            self.builder.stage_settlement(
                self.cloud_address,
                contract,
                "verify_and_settle",
                (query_id, self.cloud.ads_value, response_to_chain_args(response)),
                gas_limit=self.settle_gas_limit,
                tx_id=tx_id,
            )
            tx_ids[query_id] = tx_id
        self._fold_membership_checks([response for _, response in staged])
        landed = self._run_settle_rounds(list(tx_ids.values()))
        return {query_id: landed[tx_id] for query_id, tx_id in tx_ids.items()}

    def _run_settle_rounds(self, tx_ids: list[tuple]) -> dict[tuple, tuple[Receipt, int]]:
        """Seal blocks until every staged tx has a receipt (delay-tolerant)."""
        builder = self.builder
        assert builder is not None
        rounds = 0
        while any(tx_id not in builder.receipts for tx_id in tx_ids):
            if rounds >= MAX_SETTLE_ROUNDS:
                raise StateError(
                    f"settlement did not land within {MAX_SETTLE_ROUNDS} blocks"
                )
            builder.seal_block()
            rounds += 1
        return {tx_id: builder.receipts[tx_id] for tx_id in tx_ids}

    def _fold_membership_checks(self, responses: list[SearchResponse]) -> None:
        """Trusted self-check: fold one settle round's membership checks
        through the batched kernel.

        The per-token *untrusted* verification stays per-item inside the
        contract (``batch_verify_membership`` is complete but not
        adversarially sound — see its docstring); this fold is the cloud
        double-checking what it shipped, one ``multi_exp`` pass for the
        whole round instead of one pow per witness.  Responses that crossed
        a wire boundary or a sharded frontend don't carry their captured
        ``membership_items``; the fold is skipped (counted) rather than
        re-deriving primes, which would drift the gated ``hash_to_prime.*``
        counters.
        """
        items: list[tuple[int, int]] = []
        for response in responses:
            captured = getattr(response, "membership_items", None)
            if captured is None:
                perfstats.incr("blockmode.selfcheck.skipped")
                return
            items.extend(captured)
        if not items:
            perfstats.incr("blockmode.selfcheck.skipped")
            return
        ok = kernels.batch_verify_membership(
            self.params.accumulator.modulus, self.cloud.ads_value, items
        )
        perfstats.incr("blockmode.selfcheck.pass" if ok else "blockmode.selfcheck.fail")
        perfstats.incr("blockmode.selfcheck.items", len(items))
        trace.event("blockmode.selfcheck", ok=ok, items=len(items))

    def _chaos_block_settle(
        self, contract: SlicerContract, query_id: int, blob: bytes, op: int, attempt: int
    ) -> Receipt:
        """Chaos-delivery settle handler under block settlement.

        The mempool tx id is attempt-scoped: after a transient revert (e.g.
        a crash-restarted cloud briefly serving a stale ``Ac``) the retry
        stages a *new* transaction — the mempool's duplicate guard would
        permanently reject a re-staging under the old id, and rightly so.
        """
        assert self.builder is not None
        response = wire.load_response(blob)
        tx_id = ("settle", op, attempt)
        self.builder.stage_settlement(
            self.cloud_address,
            contract,
            "verify_and_settle",
            (query_id, self.cloud.ads_value, response_to_chain_args(response)),
            gas_limit=self.settle_gas_limit,
            tx_id=tx_id,
        )
        self._fold_membership_checks([response])
        receipt, height = self._run_settle_rounds([tx_id])[tx_id]
        self._settle_heights[query_id] = height
        return receipt

    def _batch_search_block(
        self, contract: SlicerContract, queries: list[Query], payment: int
    ) -> list[SearchOutcome]:
        """Block-mode batch: one sealed block settles every staged escrow.

        Where the synchronous batch amortises gas into a single
        ``batch_verify_and_settle`` transaction (whose verdicts are only in
        the receipt), the block-mode batch stages one ``verify_and_settle``
        per escrow and lets ONE block carry them all — the amortisation
        moves from the transaction to the block, and every verdict lands in
        the header's settlement root individually, so each is light-client
        provable.  The cloud still folds the whole round's membership
        checks through the trusted batch kernel in one pass.
        """
        assert self.user is not None
        with trace.span("batch_search", queries=len(queries), mode="block"):
            submitted = []
            for query in queries:
                tokens = self.user.make_tokens(query)
                with trace.span("submit"):
                    submit = self._chain_call(
                        self.user_address,
                        contract,
                        "submit_query",
                        (tokens_digest_input(tokens),),
                        value=payment,
                    )
                if not submit.status:
                    raise StateError(f"query submission reverted: {submit.revert_reason}")
                submitted.append((query, submit, tokens))
            with trace.span("cloud.search", batch=len(submitted)):
                responses = self.cloud.search_many([t for _, _, t in submitted])
            with trace.span("verify_settle", batch=len(submitted)):
                landed = self._settle_block(
                    contract,
                    [
                        (submit.return_value, response)
                        for (_, submit, _), response in zip(submitted, responses)
                    ],
                )
            outcomes = []
            trace_id = trace.current_trace_id()
            for (query, submit, tokens), response in zip(submitted, responses):
                settle, height = landed[submit.return_value]
                verified = bool(settle.status and settle.return_value)
                metrics.observe("gas.verify_and_settle", settle.gas_used)
                outcome = SearchOutcome(
                    query=query,
                    query_id=submit.return_value,
                    tokens=tokens,
                    response=response,
                    verified=verified,
                    record_ids=self.user.decrypt_results(response) if verified else set(),
                    submit_receipt=submit,
                    settle_receipt=settle,
                    settle_height=height,
                )
                outcomes.append(outcome)
                verdict = VERDICT_PAID if verified else VERDICT_REFUNDED
                obs_audit.AUDIT_LOG.append(
                    query_id=str(outcome.query_id),
                    verdict=verdict,
                    tokens_posted=len(tokens),
                    result_count=len(outcome.record_ids),
                    accumulator=self.cloud.ads_value,
                    paid_to="cloud" if verified else "user",
                    amount=payment,
                    gas=submit.gas_used + settle.gas_used,
                    attempts=1,
                    trace_id=trace_id,
                    batch_size=len(submitted),
                    block=height,
                    **(
                        {"shards": self.cloud.shards_for_tokens(tokens)}
                        if self._sharded
                        else {}
                    ),
                )
        return outcomes

    def settlement_proof(self, outcome: SearchOutcome) -> SettlementProof:
        """Build the light-client proof that ``outcome``'s verdict settled.

        Only block settlement anchors per-query verdicts in a header
        (``settlement_root``); a sync-mode or degraded outcome has nothing
        to prove against.
        """
        if outcome.settle_height is None:
            raise StateError("settlement proofs require settlement_mode='block'")
        block = self.chain.blocks[outcome.settle_height]
        return prove_settlement(block, encode_uint(outcome.query_id))

    # ------------------------------------------------------- chaos delivery

    def _install(self, output: OwnerOutput) -> None:
        """Direct-mode install: flat package, or pre-split per shard."""
        if self._sharded and output.shard_packages is not None:
            self.cloud.install_shards(output.shard_packages)
        else:
            self.cloud.install(output.cloud_package)

    def _next_op(self) -> int:
        """Monotonic operation counter — the idempotency-key namespace."""
        self._chaos_op += 1
        return self._chaos_op

    def _restart_cloud(self) -> None:
        """Crash-fault hook: restart the cloud from its durable state.

        Models a process restart — in-memory caches are gone, durable state
        survives.  With a segment store attached the cloud reopens from the
        store (possibly *warm*, from its checkpoint); otherwise it reloads
        the last installed ``(I, X, Ac)`` snapshot.  If the dead cloud had
        precomputed witnesses and recovery didn't rehydrate them, the
        restarted one rebuilds them: that is the witness-cache rebuild path
        the chaos tests exercise.
        """
        has_store = (
            getattr(self.cloud, "_store", None) is not None
            or getattr(self.cloud, "_store_root", None) is not None
        )
        if self._cloud_snapshot is None and not has_store:
            return
        perfstats.incr("chaos.cloud_restarts")
        had_cache = self.cloud._witness_cache is not None
        if has_store:
            self.cloud.reopen()
        else:
            self.cloud.restore(self._cloud_snapshot)
        if had_cache and self.cloud._witness_cache is None:
            self.cloud.precompute_witnesses()

    def _chaos_install(self, package: CloudPackage) -> None:
        """Owner -> cloud install over the transport (retried, idempotent)."""
        transport = self.transport
        assert transport is not None
        pkg_wire = state_io.dump_cloud_state(
            package.index, list(package.primes), package.accumulation
        )
        op = self._next_op()

        def handler(blob: bytes) -> bytes:
            index, primes, ads_value = state_io.load_cloud_state(blob)
            self.cloud.install(CloudPackage(index, primes, ads_value))
            # Snapshot atomically with the install: a crash after this
            # handler ran (but before the reply arrived) must restart the
            # cloud into the *installed* state, or the idempotency cache
            # and the cloud's reality would disagree.
            self._cloud_snapshot = self.cloud.snapshot()
            return b"installed"

        def install_op(attempt: int) -> None:
            transport.deliver(
                OWNER_TO_CLOUD,
                pkg_wire,
                handler,
                idempotency_key=("install", op),
                on_crash=self._restart_cloud,
            )

        self.retry.run(install_op, transport=transport, label="install")

    def _chaos_install_shards(self, shard_packages) -> None:
        """Owner -> tier install: one independent transport leg per shard.

        Each shard's package crosses its own channel
        (``owner->cloud#shardK``) with its own idempotency key and retry
        budget; a crash fault restarts only that shard from its per-shard
        durable snapshot.  The tier-level snapshot is refreshed once every
        leg has landed.
        """
        transport = self.transport
        assert transport is not None
        op = self._next_op()
        for pkg in shard_packages:
            pkg_wire = dump_shard_package(pkg)
            sid = pkg.shard_id

            def handler(blob: bytes) -> bytes:
                # install_shard also refreshes that shard's durable snapshot.
                self.cloud.install_shard(load_shard_package(blob))
                return b"installed"

            def install_op(
                attempt: int, _wire=pkg_wire, _handler=handler, _sid=sid
            ) -> None:
                transport.deliver(
                    shard_channel(OWNER_TO_CLOUD, _sid),
                    _wire,
                    _handler,
                    idempotency_key=("install", op, _sid),
                    on_crash=lambda: self.cloud._restart_shard(_sid),
                )

            self.retry.run(
                install_op, transport=transport, label=f"install.shard{sid}"
            )
        self._cloud_snapshot = self.cloud.snapshot()

    def _chaos_update_ads(self, contract: SlicerContract, chain_ads) -> Receipt:
        """Owner -> contract ADS refresh over the transport."""
        transport = self.transport
        assert transport is not None
        op = self._next_op()

        def update_op(attempt: int) -> Receipt:
            return transport.deliver(
                OWNER_TO_CONTRACT,
                codec.encode_int(chain_ads),
                lambda blob: self._chain_call(
                    self.owner_address,
                    contract,
                    "update_ads",
                    (codec.decode_int(blob),),
                ),
                idempotency_key=("ads", op),
                cache_if=lambda r: r.status,
            )

        return self.retry.run(update_op, transport=transport, label="update_ads")

    # -------------------------------------------------------------- helpers

    def balances(self) -> dict[str, int]:
        return {
            "owner": self.chain.balance(self.owner_address),
            "user": self.chain.balance(self.user_address),
            "cloud": self.chain.balance(self.cloud_address),
        }

    def _require_setup(self) -> SlicerContract:
        if self.contract is None:
            raise StateError("call setup() before using the system")
        return self.contract
