"""Compile the range/conjunctive DSL into a minimal set of slice-query legs.

The protocol answers one ``(v, mc)`` token-set at a time, so a plan
expression — a :class:`~repro.core.query.Range`, an
:class:`~repro.core.query.And`, or a bare :class:`~repro.core.query.Query`
— must decompose into *legs*: atomic queries whose verified result sets
intersect to the expression's answer.  The compiler keeps that leg set
minimal:

* every term is normalised to a closed interval over its attribute
  (``Query(v, ">")`` selects ``a < v`` and becomes ``[0, v-1]``; equality
  is the point interval ``[v, v]``);
* intervals on the same attribute intersect into one — ``And(Range(10,
  50), Range(20, 80))`` plans as ``[20, 50]``, two legs instead of four —
  and a contradiction (an empty intersection) is rejected at compile time
  rather than paid for on chain;
* a full-domain interval constrains nothing and is dropped when any other
  attribute still constrains the result (a plan that is *only* full-domain
  intervals is rejected, like a whole-domain range);
* the surviving intervals emit the classic decomposition — one equality
  leg for a point, one order leg for an edge-touching range, two order
  legs for an interior range — and identical legs are deduplicated.

Execution is not this module's job: :meth:`repro.system.SlicerSystem.
search_plans` runs the legs of a whole plan batch through one
``CloudServer.search_many`` collection (cross-leg/cross-plan token dedup),
verifies and settles each leg individually against the one on-chain
accumulator, and intersects the decrypted record-ID sets.  The ID
intersection happens *user-side* by construction: index payloads carry a
fresh nonce per (keyword, record) posting, so the same record's ciphertext
is unlinkable across legs — the cloud cannot intersect what it cannot
link, and per-leg result multisets must reach the contract anyway for the
fairness guarantee (a tampered leg refunds exactly the queries it served).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ParameterError
from ..core.query import And, MatchCondition, Query, Range
from ..core.records import AttributedDatabase, Database

#: Anything compile_plan accepts as one plan expression.
PlanExpr = Query | Range | And


@dataclass(frozen=True)
class QueryPlan:
    """One compiled expression: its legs plus compile-time accounting.

    ``legs`` is the minimal deduplicated leg list, in deterministic order
    (attributes by first appearance in the expression, ``<`` leg before
    ``>`` within a range).  ``intervals`` records the post-merge closed
    interval per attribute — the plan's plaintext semantics, which
    :meth:`oracle_ids` evaluates for ground-truth checks.  ``naive_legs``
    counts the legs a planner-less client would issue (one decomposition
    per term, no cross-term merging), so ``merged_away`` is the compile-
    time saving before any token-level dedup.
    """

    expr: PlanExpr
    legs: tuple[Query, ...]
    intervals: tuple[tuple[str, int, int], ...]
    atoms: int
    naive_legs: int

    @property
    def merged_away(self) -> int:
        return self.naive_legs - len(self.legs)

    def oracle_ids(self, database: Database | AttributedDatabase) -> set[bytes]:
        """Ground-truth record IDs from the plaintext database."""
        out: set[bytes] | None = None
        for attribute, lo, hi in self.intervals:
            pred = Range(lo, hi, attribute).predicate()
            if isinstance(database, AttributedDatabase):
                ids = database.ids_matching(attribute, pred)
            else:
                ids = database.ids_matching(pred)
            out = ids if out is None else out & ids
        return out or set()

    def describe(self) -> str:
        parts = " AND ".join(
            f"{attr or 'a'} in [{lo}, {hi}]" for attr, lo, hi in self.intervals
        )
        return f"plan({parts}; {len(self.legs)} legs)"


def _flatten(expr: PlanExpr) -> list[Query | Range]:
    if isinstance(expr, And):
        return list(expr.terms)
    if isinstance(expr, (Query, Range)):
        return [expr]
    raise ParameterError(
        f"unsupported plan expression {expr!r}; expected Query, Range or And"
    )


def _term_interval(term: Query | Range, bits: int) -> tuple[str, int, int]:
    """Normalise one term to ``(attribute, lo, hi)``; may be empty (lo > hi)."""
    domain_hi = (1 << bits) - 1
    if isinstance(term, Range):
        term.validate(bits)
        return term.attribute, term.lo, term.hi
    term.validate(bits)
    v = term.value
    if term.condition is MatchCondition.EQUAL:
        return term.attribute, v, v
    if term.condition is MatchCondition.GREATER:
        # v > a selects a in [0, v-1]
        return term.attribute, 0, v - 1
    # v < a selects a in [v+1, domain_hi]
    return term.attribute, v + 1, domain_hi


def _naive_leg_count(lo: int, hi: int, bits: int) -> int:
    """Legs the classic per-term decomposition issues for ``[lo, hi]``."""
    if lo == hi:
        return 1
    return int(lo > 0) + int(hi < (1 << bits) - 1)


def compile_plan(expr: PlanExpr, bits: int) -> QueryPlan:
    """Compile one expression into its minimal leg set (see module doc)."""
    terms = _flatten(expr)
    if not terms:
        raise ParameterError("empty plan expression")
    domain_hi = (1 << bits) - 1
    order: list[str] = []
    bounds: dict[str, tuple[int, int]] = {}
    naive_legs = 0
    for term in terms:
        attribute, lo, hi = _term_interval(term, bits)
        if lo > hi:
            raise ParameterError(
                f"unsatisfiable plan term on attribute {attribute!r}: "
                f"{term.describe()} matches nothing"
            )
        naive_legs += _naive_leg_count(lo, hi, bits)
        if attribute not in bounds:
            order.append(attribute)
            bounds[attribute] = (lo, hi)
        else:
            cur_lo, cur_hi = bounds[attribute]
            merged = (max(cur_lo, lo), min(cur_hi, hi))
            if merged[0] > merged[1]:
                raise ParameterError(
                    f"unsatisfiable conjunction on attribute {attribute!r}: "
                    f"[{cur_lo}, {cur_hi}] and [{lo}, {hi}] do not intersect"
                )
            bounds[attribute] = merged

    intervals: list[tuple[str, int, int]] = []
    legs: list[Query] = []
    for attribute in order:
        lo, hi = bounds[attribute]
        if lo == 0 and hi == domain_hi and len(order) > 1:
            # Vacuous term: constrains nothing when anything else does.
            continue
        intervals.append((attribute, lo, hi))
        legs.extend(Range(lo, hi, attribute).to_queries(bits))
    if not intervals:
        # Every attribute was vacuous: the plan selects the whole dataset.
        raise ParameterError(
            "plan covers the whole domain; fetch the dataset instead of searching"
        )
    # Identical legs across attributes cannot collide, but dedup anyway so
    # a repeated atom never pays twice.
    deduped = tuple(dict.fromkeys(legs))
    return QueryPlan(
        expr=expr,
        legs=deduped,
        intervals=tuple(intervals),
        atoms=len(terms),
        naive_legs=naive_legs,
    )


def compile_plans(exprs: list[PlanExpr], bits: int) -> list[QueryPlan]:
    """Compile a batch of expressions (one :class:`QueryPlan` each)."""
    return [compile_plan(expr, bits) for expr in exprs]
