"""Range/conjunctive query planner: DSL atoms + leg compilation.

``from repro.planner import And, Range, compile_plan`` is the whole
surface: build an expression, compile it against the index's bit width,
and hand the legs to :meth:`repro.system.SlicerSystem.search_plans` (or
any per-leg executor — the legs are ordinary :class:`~repro.core.query.
Query` atoms).
"""

from ..core.query import And, Query, Range
from .plan import PlanExpr, QueryPlan, compile_plan, compile_plans

__all__ = [
    "And",
    "PlanExpr",
    "Query",
    "QueryPlan",
    "Range",
    "compile_plan",
    "compile_plans",
]
