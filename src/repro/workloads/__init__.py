"""Workload generators, domain datasets and benchmark scaling presets."""

from .datasets import medical_records, sensor_readings, transaction_ledger
from .generator import (
    QueryPopularity,
    RangeWorkload,
    ShardSkew,
    ValueDistribution,
    WorkloadGenerator,
    WorkloadSpec,
)
from .scaling import ScalePreset, current_scale, get_scale

__all__ = [
    "QueryPopularity",
    "RangeWorkload",
    "ScalePreset",
    "ShardSkew",
    "ValueDistribution",
    "WorkloadGenerator",
    "WorkloadSpec",
    "current_scale",
    "get_scale",
    "medical_records",
    "sensor_readings",
    "transaction_ledger",
]
