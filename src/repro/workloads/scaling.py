"""Benchmark scale presets.

The paper measures up to 160K records on an i9-9900K.  Our accumulator and
chain are pure Python, so the default benchmark scale is reduced while
keeping the *sweep shape* (five points doubling from the base, the same
8/16/24 bit settings).  ``REPRO_SCALE`` selects a preset:

* ``smoke``  — seconds; CI-sized sanity sweep
* ``default`` — a few minutes; the committed EXPERIMENTS.md numbers
* ``paper``  — the paper's 10K..160K points (hours in pure Python)
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class ScalePreset:
    name: str
    record_counts: tuple[int, ...]
    bit_settings: tuple[int, ...]
    insert_counts: tuple[int, ...]
    preload: int
    query_trials: int


_PRESETS = {
    "smoke": ScalePreset(
        name="smoke",
        record_counts=(50, 100, 200),
        bit_settings=(8, 16),
        insert_counts=(25, 50),
        preload=100,
        query_trials=2,
    ),
    "default": ScalePreset(
        name="default",
        record_counts=(100, 200, 400, 800, 1600),
        bit_settings=(8, 16, 24),
        insert_counts=(100, 200, 400, 800),
        preload=1600,
        query_trials=3,
    ),
    "paper": ScalePreset(
        name="paper",
        record_counts=(10_000, 20_000, 40_000, 80_000, 160_000),
        bit_settings=(8, 16, 24),
        insert_counts=(10_000, 20_000, 40_000, 80_000, 160_000),
        preload=160_000,
        query_trials=5,
    ),
}


def current_scale() -> ScalePreset:
    """The preset selected by ``REPRO_SCALE`` (default: ``default``)."""
    name = os.environ.get("REPRO_SCALE", "default").lower()
    if name not in _PRESETS:
        raise KeyError(f"REPRO_SCALE must be one of {sorted(_PRESETS)}, got {name!r}")
    return _PRESETS[name]


def get_scale(name: str) -> ScalePreset:
    return _PRESETS[name]
