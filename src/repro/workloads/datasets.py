"""Synthetic domain datasets for examples, tests and demos.

The paper motivates numerical search with medical records and business
transactions; these generators produce deterministic, realistically-shaped
versions of both (no real data is available offline — see DESIGN.md's
substitution table).  Values are discretised into the protocol's integer
domain; the helpers return plain (id, attributes) structures so callers
choose their own bit widths.
"""

from __future__ import annotations

import math

from ..common.rng import DeterministicRNG, default_rng
from ..core.records import AttributedDatabase, Database


def _bounded_gauss(rng: DeterministicRNG, mean: float, std: float, lo: int, hi: int) -> int:
    u1 = max(rng.randbits(53) / (1 << 53), 1e-12)
    u2 = rng.randbits(53) / (1 << 53)
    gauss = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
    return min(max(int(mean + gauss * std), lo), hi)


def medical_records(
    n_patients: int, rng: DeterministicRNG | None = None, bits: int = 8
) -> AttributedDatabase:
    """Patient registry: age (bimodal adult/senior), systolic BP (age-linked),
    heart rate.  All attributes fit ``bits`` (>= 8)."""
    rng = rng or default_rng(0x3ED)
    cap = (1 << bits) - 1
    db = AttributedDatabase(bits)
    for i in range(n_patients):
        if rng.randint_below(100) < 65:
            age = _bounded_gauss(rng, 42, 13, 18, min(90, cap))
        else:
            age = _bounded_gauss(rng, 74, 8, 60, min(100, cap))
        systolic = _bounded_gauss(rng, 105 + age // 2, 12, 85, min(200, cap))
        heart_rate = _bounded_gauss(rng, 72, 10, 45, min(180, cap))
        db.add(f"p{i:05d}"[:8], {"age": age, "systolic": systolic, "heart_rate": heart_rate})
    return db


def transaction_ledger(
    n_transactions: int, rng: DeterministicRNG | None = None, bits: int = 16
) -> Database:
    """Business transactions: log-normal-ish amounts (most small, rare large),
    discretised to the ``bits`` domain."""
    rng = rng or default_rng(0x7AB)
    cap = (1 << bits) - 1
    db = Database(bits)
    for i in range(n_transactions):
        u1 = max(rng.randbits(53) / (1 << 53), 1e-12)
        u2 = rng.randbits(53) / (1 << 53)
        gauss = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        amount = int(math.exp(4.0 + 1.1 * gauss))  # median ~55, heavy tail
        db.add(f"tx{i:05d}"[:8], min(amount, cap))
    return db


def sensor_readings(
    n_readings: int, rng: DeterministicRNG | None = None, bits: int = 16
) -> Database:
    """IoT-style time series: a daily sinusoid plus noise (clustered values)."""
    rng = rng or default_rng(0x5E2)
    cap = (1 << bits) - 1
    mid = cap // 2
    swing = cap // 4
    db = Database(bits)
    for i in range(n_readings):
        phase = 2.0 * math.pi * (i % 288) / 288  # 5-minute samples per day
        noise = rng.randint_below(max(cap // 50, 1)) - cap // 100
        value = int(mid + swing * math.sin(phase)) + noise
        db.add(f"s{i:06d}"[:8], min(max(value, 0), cap))
    return db
