"""Workload generation: the paper's "randomly simulated key-value records".

The evaluation (Section VII) draws records with 8/16/24-bit values uniformly
at random.  Besides the paper's uniform workload we provide Zipfian and
clustered (discretised normal) value distributions, because the cost of
Slicer's ADS is governed by the number of *distinct* keywords — a quantity
that the value distribution controls directly (the 8-bit "plateau" in
Figs. 3b/4b happens exactly because the uniform 8-bit space saturates).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..common.errors import ParameterError
from ..common.rng import DeterministicRNG, default_rng
from ..core.query import And, MatchCondition, Query, Range
from ..core.records import AttributedDatabase, Database


class ValueDistribution(enum.Enum):
    UNIFORM = "uniform"
    ZIPF = "zipf"
    CLUSTERED = "clustered"


class QueryPopularity(enum.Enum):
    """How often each *query* recurs in a stream (distinct from value skew).

    Production search traffic is repeat-heavy: a few hot queries dominate
    (the Zipf shape observed in web/database query logs), which is exactly
    the regime result caching targets.  ``UNIFORM`` draws every pool query
    equally often — the cache-hostile baseline.
    """

    UNIFORM = "uniform"
    ZIPF = "zipf"


@dataclass(frozen=True)
class ShardSkew:
    """Skewed query->shard routing for hot-shard experiments.

    A sharded serving tier balances only as well as the traffic does:
    under production skew a few hot keywords concentrate on one shard and
    cap the tier's speedup (max/mean token imbalance).  This knob makes
    that regime *reproducible*: ``hot_fraction`` of generated queries are
    steered onto ``hot_shard``, the rest land uniformly on the other
    shards.  Steering is by rejection sampling against the real routing
    function (the PRF-hash route is not invertible), bounded by
    ``max_attempts`` draws per query.
    """

    shards: int
    hot_shard: int = 0
    hot_fraction: float = 0.8
    max_attempts: int = 512

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ParameterError("shards must be >= 1")
        if not 0 <= self.hot_shard < self.shards:
            raise ParameterError("hot_shard must be a valid shard id")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ParameterError("hot_fraction must be in [0, 1]")
        if self.max_attempts < 1:
            raise ParameterError("max_attempts must be positive")


@dataclass(frozen=True)
class RangeWorkload:
    """A repeat-heavy stream of range/conjunctive plan expressions.

    ``selectivity`` fixes each range's width as a fraction of the value
    domain (the paper-style 0.1%/1%/10% sweep); ``fan_in`` is how many
    attributes each conjunction constrains (1 = plain range).  Like
    :meth:`WorkloadGenerator.popular_queries`, draws come from a fixed
    pool with rank skew — hot ranges recur, which is the regime where the
    planner's cross-leg token dedup pays.
    """

    selectivity: float
    fan_in: int = 1
    popularity: QueryPopularity = QueryPopularity.ZIPF
    zipf_s: float = 1.2
    pool_size: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.selectivity <= 1.0:
            raise ParameterError("selectivity must be in (0, 1]")
        if not 1 <= self.fan_in <= 3:
            raise ParameterError("fan_in must be between 1 and 3")
        if self.pool_size < 1:
            raise ParameterError("pool_size must be positive")


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a dataset to generate."""

    n_records: int
    value_bits: int
    distribution: ValueDistribution = ValueDistribution.UNIFORM
    zipf_s: float = 1.2
    cluster_count: int = 4
    cluster_spread: float = 0.03  # stddev as a fraction of the domain

    def __post_init__(self) -> None:
        if self.n_records < 0:
            raise ParameterError("n_records must be non-negative")
        if self.value_bits <= 0:
            raise ParameterError("value_bits must be positive")


class WorkloadGenerator:
    """Deterministic (seeded) generator of record databases and query mixes."""

    def __init__(self, rng: DeterministicRNG | None = None) -> None:
        self.rng = rng or default_rng()

    # ------------------------------------------------------------ datasets

    def database(self, spec: WorkloadSpec, id_offset: int = 0) -> Database:
        """Generate ``spec.n_records`` records with unique sequential IDs."""
        db = Database(spec.value_bits)
        for i in range(spec.n_records):
            db.add(id_offset + i, self._draw_value(spec))
        return db

    def attributed_database(
        self, n_records: int, attributes: dict[str, WorkloadSpec], id_offset: int = 0
    ) -> AttributedDatabase:
        """Multi-attribute dataset; all attributes share one bit width."""
        widths = {spec.value_bits for spec in attributes.values()}
        if len(widths) != 1:
            raise ParameterError("all attributes must share one bit width")
        db = AttributedDatabase(widths.pop())
        for i in range(n_records):
            db.add(
                id_offset + i,
                {name: self._draw_value(spec) for name, spec in attributes.items()},
            )
        return db

    def _draw_value(self, spec: WorkloadSpec) -> int:
        domain = 1 << spec.value_bits
        if spec.distribution is ValueDistribution.UNIFORM:
            return self.rng.randint_below(domain)
        if spec.distribution is ValueDistribution.ZIPF:
            return self._zipf(domain, spec.zipf_s)
        return self._clustered(domain, spec.cluster_count, spec.cluster_spread)

    def _zipf(self, domain: int, s: float) -> int:
        """Inverse-CDF sampling of a truncated zeta distribution.

        Rank-1 mass maps to value 0, rank-2 to 1, ... so small values are
        hot — a common shape for ages/amounts in practice.
        """
        # Rejection-free approximate inverse CDF using the continuous zeta.
        u = self.rng.randbits(53) / (1 << 53)
        # For s > 1 the harmonic tail behaves like x^(1-s); invert that.
        rank = int((1.0 - u) ** (-1.0 / (s - 1.0))) if s > 1.0 else int(u * domain) + 1
        return min(rank - 1, domain - 1)

    def _clustered(self, domain: int, clusters: int, spread: float) -> int:
        center = (self.rng.randint_below(clusters) + 0.5) * domain / clusters
        # Box-Muller normal draw.
        u1 = max(self.rng.randbits(53) / (1 << 53), 1e-12)
        u2 = self.rng.randbits(53) / (1 << 53)
        gauss = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        value = int(center + gauss * spread * domain)
        return min(max(value, 0), domain - 1)

    # ------------------------------------------------------------- queries

    def equality_queries(self, count: int, value_bits: int, attribute: str = "") -> list[Query]:
        domain = 1 << value_bits
        return [
            Query(self.rng.randint_below(domain), MatchCondition.EQUAL, attribute)
            for _ in range(count)
        ]

    def order_queries(self, count: int, value_bits: int, attribute: str = "") -> list[Query]:
        domain = 1 << value_bits
        out = []
        for _ in range(count):
            condition = (
                MatchCondition.GREATER if self.rng.randbits(1) else MatchCondition.LESS
            )
            out.append(Query(self.rng.randint_below(domain), condition, attribute))
        return out

    def mixed_queries(
        self, count: int, value_bits: int, equality_fraction: float = 0.5
    ) -> list[Query]:
        cut = int(count * equality_fraction)
        return self.equality_queries(cut, value_bits) + self.order_queries(
            count - cut, value_bits
        )

    def sharded_queries(
        self,
        count: int,
        value_bits: int,
        skew: ShardSkew,
        route,
        attribute: str = "",
    ) -> list[Query]:
        """Equality queries whose shard placement follows ``skew``.

        ``route`` maps a :class:`Query` to its shard id — use
        :func:`repro.sharding.plan.equality_route` for the real tier
        routing.  Per query: pick the target shard first (``hot_shard``
        with probability ``hot_fraction``, else uniform over the others),
        then rejection-sample equality queries until one routes there.
        With one shard the target check is vacuous, so the stream
        degenerates to plain :meth:`equality_queries` draws.

        Deterministic under a seeded rng.  If ``max_attempts`` draws never
        hit the target (possible on tiny domains where no value routes to
        some shard) the last draw is kept — the realised distribution is
        then only approximately the requested one, which the benchmark
        reports as measured imbalance rather than assuming.
        """
        domain = 1 << value_bits
        out: list[Query] = []
        for _ in range(count):
            if skew.shards == 1:
                target = 0
            elif self.rng.randbits(53) / (1 << 53) < skew.hot_fraction:
                target = skew.hot_shard
            else:
                others = [s for s in range(skew.shards) if s != skew.hot_shard]
                target = others[self.rng.randint_below(len(others))]
            query = None
            for _attempt in range(skew.max_attempts):
                query = Query(
                    self.rng.randint_below(domain), MatchCondition.EQUAL, attribute
                )
                if skew.shards == 1 or route(query) == target:
                    break
            assert query is not None
            out.append(query)
        return out

    def popular_queries(
        self,
        count: int,
        value_bits: int,
        popularity: QueryPopularity = QueryPopularity.ZIPF,
        zipf_s: float = 1.2,
        pool: list[Query] | None = None,
        pool_size: int = 16,
        equality_fraction: float = 0.5,
    ) -> list[Query]:
        """A repeat-heavy query stream drawn from a fixed pool with rank skew.

        First a pool of candidate queries is generated (or supplied), then
        ``count`` draws pick pool *ranks*: uniformly under
        :attr:`QueryPopularity.UNIFORM`, Zipf(``zipf_s``) under
        :attr:`QueryPopularity.ZIPF` (rank 1 = the pool's first query = the
        hottest).  Deterministic under a seeded rng — the same generator
        state always emits the same stream, which is what lets the repeat-
        search benchmarks assert byte-identical responses across runs.
        """
        if pool is None:
            if pool_size <= 0:
                raise ParameterError("pool_size must be positive")
            pool = self.mixed_queries(pool_size, value_bits, equality_fraction)
        if not pool:
            raise ParameterError("query pool must be non-empty")
        out: list[Query] = []
        for _ in range(count):
            if popularity is QueryPopularity.UNIFORM:
                rank = self.rng.randint_below(len(pool))
            else:
                rank = min(self._zipf(len(pool), zipf_s), len(pool) - 1)
            out.append(pool[rank])
        return out

    # --------------------------------------------------------------- plans

    def range_plans(
        self,
        count: int,
        value_bits: int,
        workload: RangeWorkload,
        attributes: list[str] | None = None,
    ) -> list[Range | And]:
        """A stream of plan expressions for the range-planner benchmarks.

        Each pool entry is a random closed range of width
        ``selectivity * domain`` (clamped to at least one value and to fit
        the domain); with ``fan_in > 1`` the entry conjoins ranges over
        ``fan_in`` distinct attributes.  The stream then draws pool ranks
        with the configured popularity, exactly like
        :meth:`popular_queries` — so hot plans repeat and their legs'
        tokens dedup inside one batched collection.
        """
        attrs = list(attributes) if attributes is not None else [""]
        if workload.fan_in > len(attrs):
            raise ParameterError(
                f"fan_in {workload.fan_in} exceeds the {len(attrs)} known attributes"
            )
        domain = 1 << value_bits
        width = max(1, round(workload.selectivity * domain))
        if width >= domain:
            raise ParameterError(
                "selectivity covers the whole domain; a plan that selects "
                "everything is rejected at compile time"
            )
        pool: list[Range | And] = []
        for _ in range(workload.pool_size):
            chosen = self._sample_attrs(attrs, workload.fan_in)
            terms = []
            for attribute in chosen:
                lo = self.rng.randint_below(domain - width + 1)
                terms.append(Range(lo, lo + width - 1, attribute))
            pool.append(terms[0] if len(terms) == 1 else And(*terms))
        out: list[Range | And] = []
        for _ in range(count):
            if workload.popularity is QueryPopularity.UNIFORM:
                rank = self.rng.randint_below(len(pool))
            else:
                rank = min(self._zipf(len(pool), workload.zipf_s), len(pool) - 1)
            out.append(pool[rank])
        return out

    def _sample_attrs(self, attrs: list[str], k: int) -> list[str]:
        """Draw ``k`` distinct attributes, deterministically under the rng."""
        remaining = list(attrs)
        chosen = []
        for _ in range(k):
            chosen.append(remaining.pop(self.rng.randint_below(len(remaining))))
        return chosen
