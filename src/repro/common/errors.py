"""Exception hierarchy for the Slicer reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.  Protocol-level failures (a cloud
returning bad results, a verification failing on chain) are *not* errors --
they are modelled as return values -- so the exceptions here indicate misuse
or genuine internal faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ParameterError(ReproError, ValueError):
    """A caller supplied an out-of-range or inconsistent parameter."""


class KeyError_(ReproError):
    """A cryptographic key is missing, malformed or mismatched."""


class StateError(ReproError):
    """A protocol party was driven in an invalid order.

    Example: asking a data user for search tokens before the owner shared the
    trapdoor state, or inserting into a protocol instance that was never
    built.
    """


class IndexCorruptionError(ReproError):
    """The encrypted index violates a structural invariant.

    This is raised only for *local* data structures; dishonest-cloud behaviour
    surfaces as a failed verification, never as this exception.
    """


class AccumulatorError(ReproError):
    """RSA accumulator misuse (unknown element, bad witness request...)."""


class BlockchainError(ReproError):
    """The simulated chain rejected a transaction for structural reasons."""


class OutOfGasError(BlockchainError):
    """A metered contract call exceeded its gas allowance."""


class InsufficientFundsError(BlockchainError):
    """An account tried to spend more than its balance."""


class ContractRevert(BlockchainError):
    """A contract aborted execution; state changes are rolled back."""

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason or "execution reverted")
        self.reason = reason
