"""Exception hierarchy for the Slicer reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.  Protocol-level failures (a cloud
returning bad results, a verification failing on chain) are *not* errors --
they are modelled as return values -- so the exceptions here indicate misuse
or genuine internal faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ParameterError(ReproError, ValueError):
    """A caller supplied an out-of-range or inconsistent parameter."""


class KeyError_(ReproError):
    """A cryptographic key is missing, malformed or mismatched."""


class StateError(ReproError):
    """A protocol party was driven in an invalid order.

    Example: asking a data user for search tokens before the owner shared the
    trapdoor state, or inserting into a protocol instance that was never
    built.
    """


class IndexCorruptionError(ReproError):
    """The encrypted index violates a structural invariant.

    This is raised only for *local* data structures; dishonest-cloud behaviour
    surfaces as a failed verification, never as this exception.
    """


class AccumulatorError(ReproError):
    """RSA accumulator misuse (unknown element, bad witness request...)."""


class TransportError(ReproError):
    """A message failed to cross a party boundary (retryable).

    Raised only by the chaos transport layer (:mod:`repro.chaos`): the
    in-process direct path never loses messages.  Transport errors model
    *delivery* failures — the receiver either never saw the message or its
    reply was lost — so re-sending is always safe for idempotent operations.
    """


class TransportTimeout(TransportError):
    """No reply within the delivery window (dropped, stalled or crashed peer)."""


class TransportCorruption(TransportError):
    """A frame failed its integrity check; the message was discarded."""


class TransientChainError(TransportError):
    """A chain call reverted for a reason that may clear on retry.

    Example: ``verify_and_settle`` against an ADS digest that moved under a
    concurrent insert — the next attempt reads the fresh digest.
    """


class RetryExhausted(ReproError):
    """A retried operation failed on every attempt the policy allowed.

    Carries enough structure to attribute the failure after the fact
    (degraded :class:`~repro.system.SearchOutcome`\\ s surface these fields
    through ``outcome.failure``):

    * ``label`` — the operation that was being retried (e.g. ``"submit"``);
    * ``attempts`` — how many attempts the policy spent;
    * ``last_error`` — the final exception (also chained as ``__cause__``);
    * ``fault_step`` — the index into the chaos
      :class:`~repro.chaos.faults.FaultPlan` history of the injection that
      exhausted the budget, or ``None`` outside chaos runs.
    """

    def __init__(
        self,
        message: str,
        *,
        label: str | None = None,
        attempts: int | None = None,
        last_error: BaseException | None = None,
        fault_step: int | None = None,
    ) -> None:
        super().__init__(message)
        self.label = label
        self.attempts = attempts
        self.last_error = last_error
        self.fault_step = fault_step


class BlockchainError(ReproError):
    """The simulated chain rejected a transaction for structural reasons."""


class OutOfGasError(BlockchainError):
    """A metered contract call exceeded its gas allowance."""


class MempoolError(BlockchainError):
    """The mempool rejected a staged transaction (duplicate id or nonce)."""


class InsufficientFundsError(BlockchainError):
    """An account tried to spend more than its balance."""


class ContractRevert(BlockchainError):
    """A contract aborted execution; state changes are rolled back."""

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason or "execution reverted")
        self.reason = reason
