"""Randomness plumbing.

Two needs coexist in this codebase:

* **Security-relevant randomness** (keys, trapdoors) — defaults to
  :func:`secrets.token_bytes` quality via ``random.SystemRandom``.
* **Reproducibility** — benchmarks and tests want deterministic runs, so
  every component that draws randomness accepts an explicit ``rng``.

:class:`DeterministicRNG` wraps :class:`random.Random` with the handful of
draw shapes the library needs (bytes, ints below a bound, shuffles), so the
protocol code never touches the global ``random`` state.
"""

from __future__ import annotations

import random
from typing import MutableSequence, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """A seedable randomness source with the draws the library needs."""

    def __init__(self, seed: int | None = None) -> None:
        if seed is None:
            self._rng: random.Random = random.SystemRandom()
        else:
            self._rng = random.Random(seed)
        self.seed = seed

    def token_bytes(self, n: int) -> bytes:
        """Draw ``n`` uniform random bytes."""
        return self._rng.getrandbits(8 * n).to_bytes(n, "big") if n else b""

    def randbits(self, k: int) -> int:
        """Draw a uniform integer in ``[0, 2**k)``."""
        return self._rng.getrandbits(k)

    def randint_below(self, bound: int) -> int:
        """Draw a uniform integer in ``[0, bound)``."""
        return self._rng.randrange(bound)

    def randrange(self, start: int, stop: int) -> int:
        """Draw a uniform integer in ``[start, stop)``."""
        return self._rng.randrange(start, stop)

    def shuffle(self, seq: MutableSequence[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(seq)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        return self._rng.sample(seq, k)

    def spawn(self) -> "DeterministicRNG":
        """Derive an independent child stream (stable given this stream)."""
        return DeterministicRNG(self._rng.getrandbits(64))


def default_rng(seed: int | None = None) -> DeterministicRNG:
    """Create an RNG; ``seed=None`` gives OS-entropy randomness."""
    return DeterministicRNG(seed)
