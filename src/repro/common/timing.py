"""Lightweight timing and measurement helpers for the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator


@dataclass
class Stopwatch:
    """Accumulates named wall-clock durations across protocol phases."""

    durations: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[label] = self.durations.get(label, 0.0) + elapsed

    def get(self, label: str) -> float:
        return self.durations.get(label, 0.0)

    def reset(self) -> None:
        self.durations.clear()


def time_call(fn: Callable[[], object]) -> tuple[float, object]:
    """Run ``fn`` once; return (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result
