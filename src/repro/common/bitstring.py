"""Bit-level helpers for SORE tuple construction.

The SORE scheme (paper Section V.B) works on the binary expansion of
*b*-bit non-negative integers, indexing bits from 1 (most significant) to
*b* (least significant), with ``v_{|i-1}`` denoting the prefix of bits
1..i-1.  These helpers implement that exact indexing convention once so the
scheme, the tests and the leakage analysis all agree on it.
"""

from __future__ import annotations

from .errors import ParameterError


def check_value_fits(value: int, bits: int) -> None:
    """Validate that ``value`` is a non-negative integer below ``2**bits``."""
    if bits <= 0:
        raise ParameterError(f"bit width must be positive, got {bits}")
    if value < 0:
        raise ParameterError(f"SORE operates on non-negative integers, got {value}")
    if value >> bits:
        raise ParameterError(f"value {value} does not fit in {bits} bits")


def bit_at(value: int, i: int, bits: int) -> int:
    """Return bit ``i`` of ``value`` using the paper's 1-based MSB-first index.

    ``bit_at(v, 1, b)`` is the most significant of the *b* bits and
    ``bit_at(v, b, b)`` the least significant.
    """
    if not 1 <= i <= bits:
        raise ParameterError(f"bit index {i} out of range [1, {bits}]")
    return (value >> (bits - i)) & 1


def prefix_bits(value: int, i: int, bits: int) -> str:
    """Return ``v_{|i-1}``: the string of bits 1..i-1 of ``value``.

    For ``i == 1`` this is the empty prefix, matching the paper where the
    first tuple carries no prefix.
    """
    if not 1 <= i <= bits:
        raise ParameterError(f"bit index {i} out of range [1, {bits}]")
    return "".join(str(bit_at(value, k, bits)) for k in range(1, i))


def to_bits(value: int, bits: int) -> str:
    """Render ``value`` as a ``bits``-character binary string (MSB first)."""
    check_value_fits(value, bits)
    return format(value, f"0{bits}b")


def from_bits(bit_str: str) -> int:
    """Parse an MSB-first binary string back into an integer."""
    if bit_str == "":
        return 0
    if any(c not in "01" for c in bit_str):
        raise ParameterError(f"not a binary string: {bit_str!r}")
    return int(bit_str, 2)


def first_differing_bit(x: int, y: int, bits: int) -> int | None:
    """Return the smallest 1-based index where ``x`` and ``y`` differ.

    Returns ``None`` when the values are equal.  This is exactly the quantity
    the paper's leakage discussion (Section VI.A) says SORE reveals among
    tokens or among ciphertexts.
    """
    check_value_fits(x, bits)
    check_value_fits(y, bits)
    if x == y:
        return None
    diff = x ^ y
    return bits - diff.bit_length() + 1


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Bytewise XOR of two equal-length strings (index payload masking)."""
    if len(a) != len(b):
        raise ParameterError(f"xor_bytes length mismatch: {len(a)} vs {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


def int_to_bytes(value: int, length: int | None = None) -> bytes:
    """Big-endian byte encoding; minimal length unless ``length`` is given."""
    if value < 0:
        raise ParameterError("cannot encode negative integers")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Inverse of :func:`int_to_bytes`."""
    return int.from_bytes(data, "big")
