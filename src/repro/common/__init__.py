"""Shared low-level utilities: bit manipulation, encodings, RNG, timing."""

from .bitstring import (
    bit_at,
    bytes_to_int,
    check_value_fits,
    first_differing_bit,
    from_bits,
    int_to_bytes,
    prefix_bits,
    to_bits,
    xor_bytes,
)
from .encoding import (
    decode_parts,
    decode_uint,
    encode_parts,
    encode_str,
    encode_uint,
    sizeof,
)
from .errors import (
    AccumulatorError,
    BlockchainError,
    ContractRevert,
    IndexCorruptionError,
    InsufficientFundsError,
    OutOfGasError,
    ParameterError,
    ReproError,
    StateError,
)
from .rng import DeterministicRNG, default_rng
from .timing import Stopwatch, time_call

__all__ = [
    "AccumulatorError",
    "BlockchainError",
    "ContractRevert",
    "DeterministicRNG",
    "IndexCorruptionError",
    "InsufficientFundsError",
    "OutOfGasError",
    "ParameterError",
    "ReproError",
    "StateError",
    "Stopwatch",
    "bit_at",
    "bytes_to_int",
    "check_value_fits",
    "decode_parts",
    "decode_uint",
    "default_rng",
    "encode_parts",
    "encode_str",
    "encode_uint",
    "first_differing_bit",
    "from_bits",
    "int_to_bytes",
    "prefix_bits",
    "sizeof",
    "time_call",
    "to_bits",
    "xor_bytes",
]
