"""Process-local performance counters for the crypto kernel layer.

The kernels in :mod:`repro.crypto.kernels` memoize expensive primitives
(``H_prime`` walks, trapdoor-chain steps, fixed-base exponentiations).  A
cache that silently changes behaviour is a bug, and a cache whose hit rate
nobody can see is a guess — so every kernel reports hits, misses and raw
operation counts here, and the benchmarks print the rates next to their
timings.

Counters are *advisory instrumentation only*: no protocol logic may read
them, they carry no security meaning, and they are process-local — work done
inside forked benchmark workers counts in the worker's copy and vanishes
with it.  The overhead per increment is one dict operation, cheap enough for
the hot loops it instruments.

Naming convention: dotted ``area.event`` labels, with cache counters paired
as ``<cache>.hit`` / ``<cache>.miss`` so :func:`hit_rate` can derive rates
generically.
"""

from __future__ import annotations


class PerfStats:
    """A flat registry of named monotonic counters."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self, prefix: str = "") -> dict[str, int]:
        """Copy of all counters (optionally only those under ``prefix``)."""
        if not prefix:
            return dict(self._counts)
        return {k: v for k, v in self._counts.items() if k.startswith(prefix)}

    def reset(self, prefix: str = "") -> None:
        """Zero every counter (or only those under ``prefix``)."""
        if not prefix:
            self._counts.clear()
            return
        for key in [k for k in self._counts if k.startswith(prefix)]:
            del self._counts[key]

    def hit_rate(self, cache: str) -> float:
        """``hit / (hit + miss)`` for a ``<cache>.hit``/``.miss`` pair.

        Returns 0.0 when the cache was never consulted, so reports can
        print the rate unconditionally.
        """
        hits = self.get(f"{cache}.hit")
        misses = self.get(f"{cache}.miss")
        total = hits + misses
        return hits / total if total else 0.0

    def rates(self) -> dict[str, float]:
        """Hit rate for every cache that recorded at least one lookup."""
        caches = {
            name.rsplit(".", 1)[0]
            for name in self._counts
            if name.endswith(".hit") or name.endswith(".miss")
        }
        return {cache: self.hit_rate(cache) for cache in sorted(caches)}


#: The process-wide registry every kernel reports to.
STATS = PerfStats()


def incr(name: str, amount: int = 1) -> None:
    STATS.incr(name, amount)


def get(name: str) -> int:
    return STATS.get(name)


def snapshot(prefix: str = "") -> dict[str, int]:
    return STATS.snapshot(prefix)


def reset(prefix: str = "") -> None:
    STATS.reset(prefix)


def hit_rate(cache: str) -> float:
    return STATS.hit_rate(cache)


def rates() -> dict[str, float]:
    return STATS.rates()
