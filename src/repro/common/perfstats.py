"""Performance counters: the counter section of the metrics registry.

The kernels in :mod:`repro.crypto.kernels` memoize expensive primitives
(``H_prime`` walks, trapdoor-chain steps, fixed-base exponentiations).  A
cache that silently changes behaviour is a bug, and a cache whose hit rate
nobody can see is a guess — so every kernel reports hits, misses and raw
operation counts here, and the benchmarks print the rates next to their
timings.

Counters are *advisory instrumentation only*: no protocol logic may read
them and they carry no security meaning.  They are process-local, but no
longer worker-blind: tasks fanned out by
:class:`~repro.parallel.executor.ParallelExecutor` return a counter
**delta** (via :meth:`PerfStats.delta_since`) alongside their results, and
the executor merges the deltas back in chunk order (:meth:`PerfStats.merge`)
— so counter snapshots are identical whether a workload ran serially or
across forked workers.  The overhead per increment is one dict operation,
cheap enough for the hot loops it instruments.

Naming convention: dotted ``area.event`` labels, with cache counters paired
as ``<cache>.hit`` / ``<cache>.miss`` so :func:`hit_rate` can derive rates
generically.  The richer registry (histograms, gauges, cross-process
snapshots) lives in :mod:`repro.obs.metrics` and shares this module's
:data:`STATS` store as its counter section.
"""

from __future__ import annotations


class PerfStats:
    """A flat registry of named monotonic counters."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self, prefix: str = "") -> dict[str, int]:
        """Copy of all counters (optionally only those under ``prefix``)."""
        if not prefix:
            return dict(self._counts)
        return {k: v for k, v in self._counts.items() if k.startswith(prefix)}

    def delta_since(self, baseline: dict[str, int]) -> dict[str, int]:
        """Per-counter difference against an earlier :meth:`snapshot`.

        The worker half of the cross-process merge: a task snapshots on
        entry, runs, and ships ``delta_since(entry_snapshot)`` home with its
        results.  Only changed counters appear, so idle counters cost
        nothing on the wire.
        """
        return {
            k: v - baseline.get(k, 0)
            for k, v in self._counts.items()
            if v != baseline.get(k, 0)
        }

    def merge(self, delta: dict[str, int]) -> None:
        """Fold a worker task's counter delta in (the parent half)."""
        for name, amount in delta.items():
            self.incr(name, amount)

    def reset(self, prefix: str = "") -> None:
        """Zero every counter (or only those under ``prefix``)."""
        if not prefix:
            self._counts.clear()
            return
        for key in [k for k in self._counts if k.startswith(prefix)]:
            del self._counts[key]

    def hit_rate(self, cache: str) -> float | None:
        """``hit / (hit + miss)`` for a ``<cache>.hit``/``.miss`` pair.

        Returns ``None`` when the cache was never consulted — a disabled or
        never-reached cache is not the same signal as one that was consulted
        and always missed (0.0), and regression gates must not conflate
        them.  Reports print ``n/a`` for ``None``.
        """
        hits = self.get(f"{cache}.hit")
        misses = self.get(f"{cache}.miss")
        total = hits + misses
        return hits / total if total else None

    def rates(self) -> dict[str, float]:
        """Hit rate for every cache that recorded at least one lookup."""
        caches = {
            name.rsplit(".", 1)[0]
            for name in self._counts
            if name.endswith(".hit") or name.endswith(".miss")
        }
        out: dict[str, float] = {}
        for cache in sorted(caches):
            rate = self.hit_rate(cache)
            if rate is not None:
                out[cache] = rate
        return out


#: The process-wide registry every kernel reports to.
STATS = PerfStats()


def incr(name: str, amount: int = 1) -> None:
    STATS.incr(name, amount)


def get(name: str) -> int:
    return STATS.get(name)


def snapshot(prefix: str = "") -> dict[str, int]:
    return STATS.snapshot(prefix)


def delta_since(baseline: dict[str, int]) -> dict[str, int]:
    return STATS.delta_since(baseline)


def merge(delta: dict[str, int]) -> None:
    STATS.merge(delta)


def reset(prefix: str = "") -> None:
    STATS.reset(prefix)


def hit_rate(cache: str) -> float | None:
    return STATS.hit_rate(cache)


def rates() -> dict[str, float]:
    return STATS.rates()
