"""Canonical byte encodings shared by every party.

Concatenation in the paper (the ``||`` operator) must be injective: the
tuple ``prefix || bit || oc`` fed to the PRF has to map distinct tuples to
distinct byte strings, otherwise two different slices could collide before
encryption even happens.  We therefore length-prefix every component.

The same helpers serialize protocol messages so that the sizes reported by
the benchmarks (Fig. 4 and Fig. 6) measure real wire bytes, not Python
object overhead.
"""

from __future__ import annotations

import struct
from typing import Iterable

from .errors import ParameterError

_LEN = struct.Struct(">I")


def encode_parts(*parts: bytes) -> bytes:
    """Injectively concatenate byte strings (4-byte big-endian length prefix)."""
    out = bytearray()
    for part in parts:
        if not isinstance(part, (bytes, bytearray)):
            raise ParameterError(f"encode_parts expects bytes, got {type(part).__name__}")
        out += _LEN.pack(len(part))
        out += part
    return bytes(out)


def decode_parts(blob: bytes) -> list[bytes]:
    """Inverse of :func:`encode_parts`."""
    parts: list[bytes] = []
    offset = 0
    total = len(blob)
    while offset < total:
        if offset + _LEN.size > total:
            raise ParameterError("truncated length prefix")
        (length,) = _LEN.unpack_from(blob, offset)
        offset += _LEN.size
        if offset + length > total:
            raise ParameterError("truncated payload")
        parts.append(blob[offset : offset + length])
        offset += length
    return parts


def encode_str(text: str) -> bytes:
    """UTF-8 encode a label (attribute names, order conditions)."""
    return text.encode("utf-8")


def encode_uint(value: int, width: int = 8) -> bytes:
    """Fixed-width big-endian unsigned encoding (counters, update epochs)."""
    if value < 0:
        raise ParameterError("unsigned encoding of a negative value")
    return value.to_bytes(width, "big")


def decode_uint(data: bytes) -> int:
    return int.from_bytes(data, "big")


def sizeof(*items: bytes | Iterable[bytes]) -> int:
    """Total byte size of wire items; used by the storage/overhead benches."""
    total = 0
    for item in items:
        if isinstance(item, (bytes, bytearray)):
            total += len(item)
        else:
            total += sum(len(x) for x in item)
    return total
