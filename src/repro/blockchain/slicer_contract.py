"""The Slicer verification-and-escrow smart contract.

This is the Python analogue of the paper's Solidity contract, executed on
the simulated chain with full gas metering.  Storage layout follows what the
paper's Table II implies:

* the RSA public parameters ``n`` and ``g`` are written once at deployment;
* the ADS lives on chain as a **single 32-byte digest** of the current
  accumulation value — which is why "Data insertion ... only needs to change
  a storage value" costs a near-constant ~29k gas regardless of how many
  records were inserted;
* a query escrow record binds the user's search-token digest to a payment;
* ``verify_and_settle`` re-runs Algorithm 5 (multiset hash, prime
  representative, ``VerifyMem`` via the MODEXP precompile) and either pays
  the cloud or refunds the user — the fairness mechanism.

The verification *logic* is the same code path as
:func:`repro.core.verify.verify_token_result`; here every hash, field
multiplication, primality round and modular exponentiation additionally
charges EVM-calibrated gas.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common import perfstats
from ..common.encoding import encode_parts, encode_uint
from ..core.cloud import SearchResponse
from ..core.params import SlicerParams
from ..core.state import set_hash_key
from ..core.tokens import SearchToken
from ..crypto.multiset_hash import MultisetHash
from ..obs import metrics
from .contract import Contract

#: Miller-Rabin rounds the contract charges for checking one prime
#: representative (each round priced as a MODEXP precompile call).
PRIMALITY_ROUNDS = 12


@dataclass(frozen=True)
class ChainTokenResult:
    """Calldata form of one token's result: token fields + entries + witness."""

    trapdoor: bytes
    epoch: int
    g1: bytes
    g2: bytes
    entries: tuple[bytes, ...]
    witness: int

    def to_args(self) -> list:
        return [self.trapdoor, self.epoch, self.g1, self.g2, list(self.entries), self.witness]

    def token_encoding(self) -> bytes:
        return SearchToken(self.trapdoor, self.epoch, self.g1, self.g2).encode()


def response_to_chain_args(response: SearchResponse) -> list[list]:
    """Flatten a :class:`SearchResponse` into contract calldata."""
    out = []
    for result in response.results:
        out.append(
            ChainTokenResult(
                result.token.trapdoor,
                result.token.epoch,
                result.token.g1,
                result.token.g2,
                tuple(result.entries),
                result.witness.value,
            ).to_args()
        )
    return out


def tokens_digest_input(tokens: list[SearchToken]) -> bytes:
    """The byte blob whose digest binds a query to its escrow record."""
    return encode_parts(*[t.encode() for t in tokens])


class SlicerContract(Contract):
    """Deployment / ADS update / query escrow / public verification."""

    # Estimated deployed bytecode size (the RSA modulus and generator are
    # compiled in as immutables, so they count here, not as storage);
    # calibrated so deployment gas lands near the paper's 745,346
    # (see benchmarks/bench_table2_gas.py).
    CODE_SIZE = 3048

    #: Compiled-in protocol parameters; supplied via the deploy ``config``
    #: channel (they are constants baked into the bytecode, whose bytes are
    #: already paid for by the code-deposit charge).
    params: SlicerParams

    # ---------------------------------------------------------- lifecycle

    def init(self, owner: bytes, cloud: bytes, ac_value: int) -> None:
        """Constructor: pin parties and the initial ADS digest.

        The RSA modulus and generator are immutables baked into the code
        (covered by the code-deposit charge), matching how a Solidity
        contract would hold fixed public parameters.
        """
        self.params = self.params.public()
        self._sstore("owner", owner)
        self._sstore("cloud", cloud)
        self._sstore("ads_digest", self._keccak(self._ac_bytes(ac_value)))
        self._sstore_int("query_count", 0, 8)

    def _ac_bytes(self, ac_value: int) -> bytes:
        width = (self.params.accumulator.modulus.bit_length() + 7) // 8
        return ac_value.to_bytes(width, "big")

    def _h_prime(self):
        """One ``H_prime`` instance per contract (pure compute, no storage)."""
        cached = getattr(self, "_h_prime_instance", None)
        if cached is None:
            cached = self._h_prime_instance = self.params.hash_to_prime()
        return cached

    # --------------------------------------------------------- ADS update

    def update_ads(self, new_ac: int) -> None:
        """Owner refreshes the on-chain ADS after Build or Insert.

        One digest SSTORE regardless of batch size — the paper's constant
        29,144-gas insertion.
        """
        self._require(self.caller == self._sload("owner"), "only owner may update ADS")
        digest = self._keccak(self._ac_bytes(new_ac))
        self._sstore("ads_digest", digest)
        self._emit("AdsUpdated", digest=digest)

    # ------------------------------------------------------------- escrow

    def submit_query(self, tokens_blob: bytes) -> int:
        """User posts search tokens + payment (msg.value); returns query id."""
        self._require(self.call_value > 0, "search payment required")
        query_id = self._sload_int("query_count")
        self._sstore_int("query_count", query_id + 1, 8)
        prefix = f"query:{query_id}"
        self._sstore(f"{prefix}:user", self.caller)
        self._sstore(f"{prefix}:tokens", self._keccak(tokens_blob))
        self._sstore_int(f"{prefix}:payment", self.call_value, 16)
        self._sstore_int(f"{prefix}:state", 1, 1)  # 1 = open
        self._emit("QuerySubmitted", query_id=encode_uint(query_id))
        return query_id

    # ----------------------------------------------------- verification

    def verify_and_settle(self, query_id: int, ac_value: int, response: list) -> bool:
        """Cloud submits results + VOs; the contract verifies and settles.

        Runs Algorithm 5 per token.  On success the escrowed payment is
        released to the cloud; on any failure the user is refunded.  Either
        way the query closes, so neither party can re-litigate.
        """
        self._require(self.caller == self._sload("cloud"), "only cloud may settle")
        prefix = f"query:{query_id}"
        self._require(self._sload_int(f"{prefix}:state") == 1, "query not open")
        self._require(
            self._keccak(self._ac_bytes(ac_value)) == self._sload("ads_digest"),
            "stale accumulation value",
        )

        results = [ChainTokenResult(r[0], r[1], r[2], r[3], tuple(r[4]), r[5]) for r in response]
        tokens_blob = encode_parts(*[r.token_encoding() for r in results])
        self._require(
            self._keccak(tokens_blob) == self._sload(f"{prefix}:tokens"),
            "response does not match the queried tokens",
        )

        ok = all(self._verify_token(result, ac_value) for result in results)

        payment = self._sload_int(f"{prefix}:payment")
        user = self._sload(f"{prefix}:user")
        self._sstore_int(f"{prefix}:state", 2 if ok else 3, 1)  # 2 settled, 3 refunded
        if ok:
            self._transfer(self._sload("cloud"), payment)
        else:
            self._transfer(user, payment)
        perfstats.incr("contract.settle.paid" if ok else "contract.settle.refunded")
        metrics.observe("contract.settle.entries", sum(len(r.entries) for r in results))
        self._emit("QuerySettled", query_id=encode_uint(query_id), verified=b"\x01" if ok else b"\x00")
        return ok

    def batch_verify_and_settle(
        self, query_ids: list, ac_value: int, responses: list
    ) -> list:
        """Settle several open queries in one transaction (extension).

        Amortises the 21k intrinsic transaction cost and the warm-storage
        discounts over the batch — the per-query marginal cost is just the
        cryptographic verification.  Each query still settles independently
        (one bad response refunds only its own payment).
        """
        self._require(self.caller == self._sload("cloud"), "only cloud may settle")
        self._require(len(query_ids) == len(responses), "batch length mismatch")
        self._require(
            self._keccak(self._ac_bytes(ac_value)) == self._sload("ads_digest"),
            "stale accumulation value",
        )
        outcomes = []
        for query_id, response in zip(query_ids, responses):
            prefix = f"query:{query_id}"
            self._require(self._sload_int(f"{prefix}:state") == 1, "query not open")
            results = [
                ChainTokenResult(r[0], r[1], r[2], r[3], tuple(r[4]), r[5])
                for r in response
            ]
            tokens_blob = encode_parts(*[r.token_encoding() for r in results])
            self._require(
                self._keccak(tokens_blob) == self._sload(f"{prefix}:tokens"),
                "response does not match the queried tokens",
            )
            ok = all(self._verify_token(result, ac_value) for result in results)
            payment = self._sload_int(f"{prefix}:payment")
            user = self._sload(f"{prefix}:user")
            self._sstore_int(f"{prefix}:state", 2 if ok else 3, 1)
            self._transfer(self._sload("cloud") if ok else user, payment)
            perfstats.incr("contract.settle.paid" if ok else "contract.settle.refunded")
            metrics.observe("contract.settle.entries", sum(len(r.entries) for r in results))
            outcomes.append(ok)
        self._emit("BatchSettled", count=encode_uint(len(outcomes)))
        return outcomes

    def _verify_token(self, result: ChainTokenResult, ac_value: int) -> bool:
        """Algorithm 5 for one token, with gas charged per primitive."""
        params = self.params
        q = params.multiset_field

        # h <- H(er): two hash invocations + one field multiplication per
        # element (the MSet-Mu-Hash element map uses a double digest).
        running = MultisetHash.empty(q)
        for entry in result.entries:
            self.meter.charge(2 * self.meter.schedule.keccak_gas(len(entry)), "keccak")
            self.meter.charge(self.meter.schedule.mulmod, "mulmod")
            running = running.add(entry)

        # x <- H_prime(t_j || j || G1 || G2 || h): one digest per candidate in
        # the deterministic counter walk, plus fixed Miller-Rabin rounds on
        # the accepted candidate (each priced as a small MODEXP call).
        # The walk may be served by the process-local kernel memo — a *local
        # simulation* shortcut that must never change the bill: the memo
        # returns the exact candidate count of the cold walk, so charged gas
        # is identical warm and cold (tests/crypto/test_hash_to_prime.py).
        state_key = set_hash_key(result.trapdoor, result.epoch, result.g1, result.g2)
        material = encode_parts(state_key, running.to_bytes())
        prime, candidates = self._h_prime().hash_to_prime_with_counter(material)
        self.meter.charge(
            candidates * self.meter.schedule.keccak_gas(len(material)), "keccak"
        )
        prime_len = (params.prime_bits + 7) // 8
        round_gas = self.meter.schedule.modexp_gas(prime_len, prime, prime_len)
        self.meter.charge(PRIMALITY_ROUNDS * round_gas, "primality")

        # VerifyMem: one big MODEXP — witness^x mod n == Ac.  The modulus is
        # an immutable (code constant), so no SLOAD is charged for it.
        modulus = params.accumulator.modulus
        return self._modexp(result.witness, prime, modulus) == ac_value % modulus
