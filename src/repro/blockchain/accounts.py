"""Externally-owned accounts and addresses for the simulated chain."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..common.errors import InsufficientFundsError

ADDRESS_LEN = 20


def address_from_label(label: str) -> bytes:
    """Deterministic 20-byte address from a human-readable label."""
    return hashlib.sha256(b"addr:" + label.encode("utf-8")).digest()[:ADDRESS_LEN]


def contract_address(creator: bytes, nonce: int) -> bytes:
    """CREATE-style address derivation: hash of (creator, nonce)."""
    return hashlib.sha256(b"create:" + creator + nonce.to_bytes(8, "big")).digest()[
        :ADDRESS_LEN
    ]


def format_address(address: bytes) -> str:
    return "0x" + address.hex()


@dataclass
class Account:
    """Balance/nonce pair; contracts reuse the same record for their balance."""

    balance: int = 0
    nonce: int = 0

    def debit(self, amount: int) -> None:
        if amount < 0:
            raise InsufficientFundsError("negative debit")
        if self.balance < amount:
            raise InsufficientFundsError(
                f"balance {self.balance} cannot cover {amount}"
            )
        self.balance -= amount

    def credit(self, amount: int) -> None:
        if amount < 0:
            raise InsufficientFundsError("negative credit")
        self.balance += amount
