"""The simulated blockchain: accounts, contract execution, PoA sealing.

This substitutes for the paper's Rinkeby testnet (see DESIGN.md Section 3).
It executes transactions immediately (receipts are available right away, as
on a dev chain), batches them into hash-linked blocks sealed round-robin by
a configured authority set, and meters every contract call with the EVM gas
schedule.  ``verify_integrity`` re-derives every header so tests can assert
tamper-evidence — the property the paper leans on for trusted storage of
``Ac`` and trusted execution of the verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Type, TypeVar

from ..common.errors import (
    BlockchainError,
    ContractRevert,
    InsufficientFundsError,
    OutOfGasError,
)
from .accounts import Account, address_from_label, contract_address
from .block import GENESIS_PARENT, Block, make_block
from .contract import Contract, GasMeter
from .gas import GasSchedule
from .transaction import Receipt, Transaction, encode_calldata

C = TypeVar("C", bound=Contract)

DEFAULT_GAS_LIMIT = 30_000_000


@dataclass
class ChainConfig:
    gas_schedule: GasSchedule = field(default_factory=GasSchedule)
    sealers: tuple[str, ...] = ("sealer-0", "sealer-1", "sealer-2")
    block_gas_limit: int = DEFAULT_GAS_LIMIT


class Blockchain:
    """An in-process Ethereum-like chain with immediate execution."""

    def __init__(self, config: ChainConfig | None = None) -> None:
        self.config = config or ChainConfig()
        self.accounts: dict[bytes, Account] = {}
        self.contracts: dict[bytes, Contract] = {}
        self.blocks: list[Block] = []
        self._pending_txs: list[Transaction] = []
        self._pending_receipts: list[Receipt] = []
        self._sealer_addresses = [address_from_label(s) for s in self.config.sealers]
        self._clock = 0

    # ------------------------------------------------------------ accounts

    def create_account(self, label: str, balance: int = 0) -> bytes:
        address = address_from_label(label)
        if address in self.accounts:
            raise BlockchainError(f"account {label!r} already exists")
        self.accounts[address] = Account(balance=balance)
        return address

    def _account(self, address: bytes) -> Account:
        if address not in self.accounts:
            raise BlockchainError(f"unknown account 0x{address.hex()}")
        return self.accounts[address]

    def balance(self, address: bytes) -> int:
        return self._account(address).balance

    # ------------------------------------------------------------- txs

    def deploy(
        self,
        sender: bytes,
        contract_cls: Type[C],
        args: tuple = (),
        config: dict | None = None,
        value: int = 0,
        gas_limit: int = DEFAULT_GAS_LIMIT,
    ) -> tuple[C, Receipt]:
        """Create a contract instance on chain; charges create + code deposit.

        ``config`` entries become contract attributes *before* the
        constructor runs.  They model constants compiled into the bytecode
        (already paid for through the code-deposit charge) rather than
        constructor calldata — protocol parameters travel this way.
        """
        account = self._account(sender)
        address = contract_address(sender, account.nonce)
        contract = contract_cls()
        contract.address = address
        contract.chain = self
        for key, value_ in (config or {}).items():
            setattr(contract, key, value_)

        data = encode_calldata("constructor", args)
        tx = Transaction(sender, None, value, data, gas_limit, account.nonce)
        schedule = self.config.gas_schedule
        meter = GasMeter(gas_limit, schedule)

        receipt = self._execute(
            tx,
            contract,
            meter,
            intrinsic=schedule.tx_base
            + schedule.tx_create
            + schedule.calldata_gas(data)
            + schedule.code_deposit_per_byte * contract_cls.CODE_SIZE,
            run=lambda: contract.init(*args),
        )
        receipt.contract_address = address
        if receipt.status:
            self.contracts[address] = contract
            self.accounts[address] = Account(balance=0)
            if value:
                self._move_value(sender, address, value)
        account.nonce += 1
        return contract, receipt

    def call(
        self,
        sender: bytes,
        contract: Contract | bytes,
        method: str,
        args: tuple = (),
        value: int = 0,
        gas_limit: int = DEFAULT_GAS_LIMIT,
    ) -> Receipt:
        """Invoke a contract method as a transaction."""
        if isinstance(contract, (bytes, bytearray)):
            target = self.contracts.get(bytes(contract))
            if target is None:
                raise BlockchainError(f"no contract at 0x{bytes(contract).hex()}")
        else:
            target = contract
        if method.startswith("_") or not hasattr(target, method):
            raise BlockchainError(f"contract has no public method {method!r}")

        account = self._account(sender)
        data = encode_calldata(method, args)
        tx = Transaction(sender, target.address, value, data, gas_limit, account.nonce)
        schedule = self.config.gas_schedule
        meter = GasMeter(gas_limit, schedule)

        if value:
            self._move_value(sender, target.address, value)

        def run() -> object:
            return getattr(target, method)(*args)

        receipt = self._execute(
            tx,
            target,
            meter,
            intrinsic=schedule.tx_base + schedule.calldata_gas(data),
            run=run,
        )
        if not receipt.status and value:
            # failed calls refund the attached value (state rollback)
            self._move_value(target.address, sender, value)
        account.nonce += 1
        return receipt

    def _execute(self, tx, contract: Contract, meter: GasMeter, intrinsic: int, run) -> Receipt:
        contract._begin_call(meter, tx.sender, tx.value)
        storage_snapshot = contract._snapshot()
        balances_snapshot = {addr: acct.balance for addr, acct in self.accounts.items()}
        receipt = Receipt(tx_hash=tx.hash(), status=True, gas_used=0)
        try:
            meter.charge(intrinsic, "intrinsic")
            receipt.return_value = run()
        except ContractRevert as revert:
            contract._restore(storage_snapshot)
            self._restore_balances(balances_snapshot)
            receipt.status = False
            receipt.revert_reason = revert.reason
        except OutOfGasError as oog:
            contract._restore(storage_snapshot)
            self._restore_balances(balances_snapshot)
            receipt.status = False
            receipt.revert_reason = str(oog)
            meter.used = meter.limit
        except Exception as fault:  # noqa: BLE001 - EVM semantics: any fault reverts
            # A real VM turns malformed input / internal faults into a revert
            # (invalid opcode); the chain must never crash on bad calldata.
            contract._restore(storage_snapshot)
            self._restore_balances(balances_snapshot)
            receipt.status = False
            receipt.revert_reason = f"execution fault: {type(fault).__name__}: {fault}"
        finally:
            receipt.logs = contract._end_call() if receipt.status else []
            receipt.gas_used = meter.used
            receipt.gas_breakdown = dict(meter.breakdown)
            self._pending_txs.append(tx)
            self._pending_receipts.append(receipt)
        return receipt

    def _restore_balances(self, snapshot: dict[bytes, int]) -> None:
        for address, balance in snapshot.items():
            self.accounts[address].balance = balance
        for address in list(self.accounts):
            if address not in snapshot:
                self.accounts[address].balance = 0

    def _move_value(self, sender: bytes, to: bytes, amount: int) -> None:
        if amount < 0:
            raise InsufficientFundsError("negative value transfer")
        self._account(sender).debit(amount)
        self._account(to).credit(amount)

    def _contract_transfer(self, contract_addr: bytes, to: bytes, amount: int) -> None:
        """Value transfer initiated by contract code (escrow payouts)."""
        self._move_value(contract_addr, to, amount)

    # ----------------------------------------------------------- reorg state

    def state_checkpoint(self) -> dict:
        """Capture world state (balances, nonces, contract storage).

        The block builder snapshots this before sealing so a reorg can
        rewind to the pre-block state and deterministically re-execute the
        orphaned transactions.  The block clock is deliberately *not*
        captured: timestamps stay monotonic across reorgs, which is what
        gives replacement blocks distinct hashes.
        """
        return {
            "height": len(self.blocks),
            "balances": {a: acct.balance for a, acct in self.accounts.items()},
            "nonces": {a: acct.nonce for a, acct in self.accounts.items()},
            "storages": {a: c._snapshot() for a, c in self.contracts.items()},
        }

    def restore_checkpoint(self, checkpoint: dict) -> None:
        """Rewind world state to a :meth:`state_checkpoint`.

        Accounts and contracts created *after* the checkpoint are left in
        place (account creation is off-chain in this simulation); pending
        transactions staged since are dropped — the caller re-executes.
        """
        for address, balance in checkpoint["balances"].items():
            if address in self.accounts:
                self.accounts[address].balance = balance
        for address, nonce in checkpoint["nonces"].items():
            if address in self.accounts:
                self.accounts[address].nonce = nonce
        for address, storage in checkpoint["storages"].items():
            contract = self.contracts.get(address)
            if contract is not None:
                # Hand the contract a copy: the checkpoint may be restored
                # again (deeper reorg) and live storage mutates in place.
                contract._restore(dict(storage))
        self._pending_txs = []
        self._pending_receipts = []

    def pop_block(self) -> Block:
        """Orphan the tip block (reorg primitive). State is NOT rewound —
        pair with :meth:`restore_checkpoint` and re-execution."""
        if not self.blocks:
            raise BlockchainError("cannot pop the genesis boundary: chain is empty")
        if self._pending_txs:
            raise BlockchainError("cannot pop a block with transactions pending")
        return self.blocks.pop()

    # ------------------------------------------------------------- sealing

    def mine(self) -> Block:
        """Seal pending transactions into a block (round-robin PoA)."""
        number = len(self.blocks)
        parent = self.blocks[-1].hash() if self.blocks else GENESIS_PARENT
        sealer = self._sealer_addresses[number % len(self._sealer_addresses)]
        self._clock += 1
        block = make_block(
            number, parent, self._pending_txs, self._pending_receipts, sealer, self._clock
        )
        self.blocks.append(block)
        self._pending_txs = []
        self._pending_receipts = []
        return block

    def verify_integrity(self) -> bool:
        """Recompute every header link — the chain's tamper evidence."""
        parent = GENESIS_PARENT
        for i, block in enumerate(self.blocks):
            header = block.header
            if header.number != i or header.parent_hash != parent:
                return False
            expected = make_block(
                header.number,
                header.parent_hash,
                block.transactions,
                block.receipts,
                header.sealer,
                header.timestamp,
            )
            if expected.hash() != block.hash():
                return False
            if header.sealer != self._sealer_addresses[i % len(self._sealer_addresses)]:
                return False
            parent = block.hash()
        return True

    @property
    def height(self) -> int:
        return len(self.blocks)
