"""Transaction inclusion and settlement proofs (light-client verification).

The paper leans on the blockchain for *trusted storage* of ``Ac`` and
*trusted execution* of the verification.  A party that does not replay the
whole chain can still check two kinds of facts against a sealed header:

* **inclusion** — that a transaction (say, the ADS update that anchors
  freshness) is in the block: an authentication path against the header's
  transaction Merkle root;
* **settlement** — that a specific escrow settled with a specific verdict:
  the header additionally commits to the block's ``QuerySettled`` events
  through ``settlement_root``, so "query 7 was paid" is checkable from the
  header plus one Merkle path, without receipts and without replaying the
  contract.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..common.errors import BlockchainError
from .block import Block, settlement_leaf, settlement_leaves

#: One Merkle authentication path: (sibling, sibling-is-right) per level.
MerklePath = tuple[tuple[bytes, bool], ...]


@dataclass(frozen=True)
class InclusionProof:
    """Authentication path for one transaction inside one block."""

    block_number: int
    tx_index: int
    tx_hash: bytes
    path: MerklePath


@dataclass(frozen=True)
class SettlementProof:
    """Authentication path for one settlement verdict inside one block.

    Carries the claim itself (query id, verdict byte, settling tx hash):
    verifying the path against a trusted header's ``settlement_root``
    authenticates exactly that claim.
    """

    block_number: int
    index: int
    tx_hash: bytes
    query_id: bytes
    verified: bytes
    path: MerklePath


def _leaf(item: bytes) -> bytes:
    return hashlib.sha256(b"\x00" + item).digest()


def _node(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(b"\x01" + left + right).digest()


def merkle_path(items: list[bytes], index: int) -> MerklePath:
    """The authentication path of ``items[index]`` under :func:`merkleize`."""
    if not 0 <= index < len(items):
        raise BlockchainError("merkle path index out of range")
    layer = [_leaf(item) for item in items]
    path: list[tuple[bytes, bool]] = []
    pos = index
    while len(layer) > 1:
        sibling = pos ^ 1
        if sibling >= len(layer):
            sibling = pos  # odd node duplicated upward (matches merkleize)
        path.append((layer[sibling], sibling >= pos))
        nxt = []
        for i in range(0, len(layer), 2):
            right = layer[i + 1] if i + 1 < len(layer) else layer[i]
            nxt.append(_node(layer[i], right))
        layer = nxt
        pos //= 2
    return tuple(path)


def _fold_path(leaf_item: bytes, path: MerklePath) -> bytes:
    node = _leaf(leaf_item)
    for sibling, sibling_is_right in path:
        node = _node(node, sibling) if sibling_is_right else _node(sibling, node)
    return node


# ------------------------------------------------------------- transactions


def prove_inclusion(block: Block, tx_hash: bytes) -> InclusionProof:
    """Build the Merkle path of ``tx_hash`` against the block's tx root."""
    hashes = [tx.hash() for tx in block.transactions]
    try:
        index = hashes.index(tx_hash)
    except ValueError as exc:
        raise BlockchainError("transaction not in this block") from exc
    return InclusionProof(block.number, index, tx_hash, merkle_path(hashes, index))


def verify_inclusion(tx_root: bytes, proof: InclusionProof) -> bool:
    """Check an inclusion proof against a header's transaction root."""
    return _fold_path(proof.tx_hash, proof.path) == tx_root


# -------------------------------------------------------------- settlements


def prove_settlement(block: Block, query_id: bytes) -> SettlementProof:
    """Build the settlement proof for ``query_id`` (encoded uint bytes).

    The leaf order is the receipt/event order :func:`settlement_leaves`
    derives, so prover and verifier agree on indices by construction.
    """
    leaves = settlement_leaves(block.receipts)
    settled = [
        (receipt, event)
        for receipt in block.receipts
        for event in receipt.logs
        if event.name == "QuerySettled"
    ]
    for index, (receipt, event) in enumerate(settled):
        if bytes(event.get("query_id")) == bytes(query_id):
            return SettlementProof(
                block_number=block.number,
                index=index,
                tx_hash=receipt.tx_hash,
                query_id=bytes(event.get("query_id")),
                verified=bytes(event.get("verified")),
                path=merkle_path(leaves, index),
            )
    raise BlockchainError("no settlement for this query in this block")


def verify_settlement(settlement_root: bytes, proof: SettlementProof) -> bool:
    """Check a settlement proof against a header's settlement root."""
    item = settlement_leaf(proof.tx_hash, proof.query_id, proof.verified)
    return _fold_path(item, proof.path) == settlement_root
