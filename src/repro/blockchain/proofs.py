"""Transaction inclusion proofs (light-client verification).

The paper leans on the blockchain for *trusted storage* of ``Ac`` and
*trusted execution* of the verification.  A party that does not replay the
whole chain can still check that a transaction (say, the ADS update that
anchors freshness) is included in a sealed block: the block header commits
to its transaction list through a Merkle root, so inclusion is a standard
authentication path against the header.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..common.errors import BlockchainError
from .block import Block


@dataclass(frozen=True)
class InclusionProof:
    """Authentication path for one transaction inside one block."""

    block_number: int
    tx_index: int
    tx_hash: bytes
    path: tuple[tuple[bytes, bool], ...]  # (sibling, sibling-is-right)


def _leaf(item: bytes) -> bytes:
    return hashlib.sha256(b"\x00" + item).digest()


def _node(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(b"\x01" + left + right).digest()


def prove_inclusion(block: Block, tx_hash: bytes) -> InclusionProof:
    """Build the Merkle path of ``tx_hash`` against the block's tx root."""
    hashes = [tx.hash() for tx in block.transactions]
    try:
        index = hashes.index(tx_hash)
    except ValueError as exc:
        raise BlockchainError("transaction not in this block") from exc

    layer = [_leaf(h) for h in hashes]
    path: list[tuple[bytes, bool]] = []
    pos = index
    while len(layer) > 1:
        sibling = pos ^ 1
        if sibling >= len(layer):
            sibling = pos  # odd node duplicated upward (matches merkleize)
        path.append((layer[sibling], sibling >= pos))
        nxt = []
        for i in range(0, len(layer), 2):
            right = layer[i + 1] if i + 1 < len(layer) else layer[i]
            nxt.append(_node(layer[i], right))
        layer = nxt
        pos //= 2
    return InclusionProof(block.number, index, tx_hash, tuple(path))


def verify_inclusion(tx_root: bytes, proof: InclusionProof) -> bool:
    """Check an inclusion proof against a header's transaction root."""
    node = _leaf(proof.tx_hash)
    for sibling, sibling_is_right in proof.path:
        node = _node(node, sibling) if sibling_is_right else _node(sibling, node)
    return node == tx_root
