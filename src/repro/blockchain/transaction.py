"""Transactions, receipts and event logs."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..common.encoding import encode_parts, encode_uint


def encode_calldata(method: str, args: tuple) -> bytes:
    """Canonical ABI-ish encoding of a call, priced as calldata.

    Supported argument kinds mirror what the Slicer contract needs: byte
    blobs, unsigned integers (minimal big-endian) and booleans.
    """
    parts: list[bytes] = [method.encode("utf-8")]
    for arg in args:
        if isinstance(arg, bool):
            parts.append(b"\x01" if arg else b"\x00")
        elif isinstance(arg, int):
            if arg < 0:
                raise TypeError("calldata integers are unsigned; got a negative value")
            width = max(1, (arg.bit_length() + 7) // 8)
            parts.append(arg.to_bytes(width, "big"))
        elif isinstance(arg, (bytes, bytearray)):
            parts.append(bytes(arg))
        elif isinstance(arg, (list, tuple)):
            parts.append(encode_calldata("", tuple(arg)))
        else:
            raise TypeError(f"cannot encode calldata argument of type {type(arg).__name__}")
    return encode_parts(*parts)


@dataclass(frozen=True)
class Transaction:
    """A signed-by-assumption transaction on the simulated chain."""

    sender: bytes
    to: bytes | None  # None => contract creation
    value: int
    data: bytes
    gas_limit: int
    nonce: int

    def hash(self) -> bytes:
        return hashlib.sha256(
            encode_parts(
                self.sender,
                self.to or b"",
                encode_uint(self.value, 16),
                self.data,
                encode_uint(self.gas_limit),
                encode_uint(self.nonce),
            )
        ).digest()


@dataclass(frozen=True)
class LogEvent:
    """A contract event (LOG opcode analogue)."""

    address: bytes
    name: str
    fields: tuple[tuple[str, object], ...]

    def get(self, key: str) -> object:
        for k, v in self.fields:
            if k == key:
                return v
        raise KeyError(key)


@dataclass
class Receipt:
    """Execution outcome: status, gas, logs and an itemised gas breakdown."""

    tx_hash: bytes
    status: bool
    gas_used: int
    logs: list[LogEvent] = field(default_factory=list)
    contract_address: bytes | None = None
    return_value: object = None
    revert_reason: str = ""
    gas_breakdown: dict[str, int] = field(default_factory=dict)
