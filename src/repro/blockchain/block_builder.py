"""Deterministic block production over the mempool, with reorg replay.

The builder is the block-mode counterpart of the ad-hoc ``chain.mine()``
calls the synchronous path sprinkles after each protocol step.  It owns
three things:

* **packing** — :meth:`seal_block` drains the mempool (fee order, per-sender
  nonce order, block gas budget) and seals one block;
* **replay state** — before the first transaction of every block it takes a
  :meth:`~repro.blockchain.chain.Blockchain.state_checkpoint`, and keeps a
  bounded journal of ``(checkpoint, executed calls)`` per sealed block;
* **chain faults** — with a :class:`~repro.chaos.faults.ChainFaultPlan`
  attached, every sealed block draws a reorg decision: on a hit the last
  ``d`` builder-produced blocks are orphaned, state rewinds to the earliest
  popped checkpoint, and the orphaned transactions re-execute in their
  original order into replacement blocks.

Execution is deterministic, so replay reproduces every receipt bit for bit
— the builder *asserts* this (status, gas, return value) and refuses to
continue on divergence.  That is the mechanical form of the fairness claim:
a reorg can move a settlement to a different block, it can never change the
verdict or the escrow arithmetic.  Replacement blocks still differ from the
orphaned ones: the chain clock is monotonic across reorgs, so the new
headers carry later timestamps (and therefore new hashes), which is what
the reorg-aware light-client sync has to cope with.

Transactions executed outside the mempool (block mode still submits
escrows and ADS updates immediately, exactly like the synchronous path)
enter the journal through :meth:`execute_now`, so a reorg replays them
too.  The builder never touches blocks it did not produce (deployment and
setup blocks are outside the journal and outside reorg reach).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common import perfstats
from ..common.errors import BlockchainError
from ..obs import trace
from .block import Block
from .chain import DEFAULT_GAS_LIMIT, Blockchain
from .contract import Contract
from .mempool import DEFAULT_GAS_PRICE, Mempool, PendingCall
from .transaction import Receipt

#: Journal depth: reorgs deeper than this are clamped (checkpoints beyond
#: it are pruned).  Far above any profile's ``reorg_depth_max``.
MAX_JOURNAL = 8


@dataclass
class ExecutedCall:
    """One call a sealed block executed — enough to replay it exactly."""

    tx_id: object
    sender: bytes
    contract: Contract
    method: str
    args: tuple
    value: int
    gas_limit: int
    receipt: Receipt


@dataclass
class BlockRecord:
    """Journal entry: the state before one block plus what it executed."""

    checkpoint: dict
    calls: list[ExecutedCall] = field(default_factory=list)
    block: Block | None = None


class BlockBuilder:
    """Packs pending calls into blocks; replays them across reorgs."""

    def __init__(
        self,
        chain: Blockchain,
        mempool: Mempool | None = None,
        fault_plan=None,
    ) -> None:
        self.chain = chain
        self.mempool = mempool if mempool is not None else Mempool(chain)
        self.fault_plan = fault_plan
        #: tx_id -> (latest receipt, block number it landed in).
        self.receipts: dict[object, tuple[Receipt, int]] = {}
        self._journal: list[BlockRecord] = []
        self._open: BlockRecord | None = None
        self.reorgs = 0
        self.orphaned = 0

    # ----------------------------------------------------------- execution

    def _ensure_open(self) -> BlockRecord:
        if self._open is None:
            if self.chain._pending_txs:
                raise BlockchainError(
                    "transactions executed outside the builder while in block mode"
                )
            self._open = BlockRecord(checkpoint=self.chain.state_checkpoint())
        return self._open

    def execute_now(
        self,
        sender: bytes,
        contract: Contract,
        method: str,
        args: tuple = (),
        *,
        value: int = 0,
        gas_limit: int = DEFAULT_GAS_LIMIT,
        tx_id: object = None,
    ) -> Receipt:
        """Immediate execution, journaled for reorg replay.

        Block mode keeps the synchronous semantics for non-settlement calls
        (escrow submission needs its query id back right away); routing them
        through the builder is what makes them replayable.
        """
        record = self._ensure_open()
        receipt = self.chain.call(
            sender, contract, method, args, value=value, gas_limit=gas_limit
        )
        record.calls.append(
            ExecutedCall(tx_id, bytes(sender), contract, method, tuple(args), value, gas_limit, receipt)
        )
        if tx_id is not None:
            self.receipts[tx_id] = (receipt, self.chain.height)
        return receipt

    def stage_settlement(
        self,
        sender: bytes,
        contract: Contract,
        method: str,
        args: tuple,
        *,
        gas_limit: int,
        gas_price: int = DEFAULT_GAS_PRICE,
        tx_id: object = None,
    ) -> PendingCall:
        """Stage one settlement call, applying the DELAY chain fault.

        A delay hit makes the call ineligible for the next ``d`` blocks —
        the settlement lands late (past ``d`` block boundaries) but is never
        lost, which the late-settlement conformance cells assert.
        """
        hold = self.fault_plan.draw_delay() if self.fault_plan is not None else 0
        if hold:
            perfstats.incr("chaos.chain.delayed")
            perfstats.incr("chaos.chain.delay_blocks", hold)
            trace.event("chain.delay", blocks=hold)
        return self.mempool.stage(
            sender,
            contract,
            method,
            args,
            gas_limit=gas_limit,
            gas_price=gas_price,
            tx_id=tx_id,
            hold_until=self.chain.height + hold,
        )

    # -------------------------------------------------------------- sealing

    def seal_block(self) -> Block:
        """Pack eligible mempool calls and seal one block; apply chain faults.

        The gas budget charges immediately-executed transactions at their
        *measured* gas (they already ran) and staged calls at their declared
        limit (the packing-time bound), so a submit and its settlement
        normally share a block exactly as in synchronous mode.
        """
        record = self._ensure_open()
        budget = self.chain.config.block_gas_limit - sum(
            c.receipt.gas_used for c in record.calls
        )
        taken = self.mempool.take(self.chain.height, max(budget, 0))
        for call in taken:
            receipt = self.chain.call(
                call.sender,
                call.contract,
                call.method,
                call.args,
                value=call.value,
                gas_limit=call.gas_limit,
            )
            record.calls.append(
                ExecutedCall(
                    call.tx_id,
                    call.sender,
                    call.contract,
                    call.method,
                    call.args,
                    call.value,
                    call.gas_limit,
                    receipt,
                )
            )
            self.receipts[call.tx_id] = (receipt, self.chain.height)
        block = self.chain.mine()
        record.block = block
        self._journal.append(record)
        del self._journal[:-MAX_JOURNAL]
        self._open = None
        perfstats.incr("blocks.sealed")
        perfstats.incr("blocks.settlements", len(taken))
        if not block.transactions:
            perfstats.incr("blocks.empty")
        if self.fault_plan is not None:
            depth = min(self.fault_plan.draw_reorg(), len(self._journal))
            if depth:
                self._reorg(depth)
        return block

    # --------------------------------------------------------------- reorgs

    def _reorg(self, depth: int) -> None:
        """Orphan the last ``depth`` builder blocks and replay them.

        Pops the blocks, rewinds world state to the checkpoint taken before
        the earliest of them, then re-executes every orphaned call in its
        original order, re-sealing at the same block boundaries.  Execution
        is deterministic, so the replayed receipts must match the orphaned
        ones exactly — a divergence means the chain simulation itself broke,
        and the builder raises rather than settle on it.
        """
        replay = self._journal[-depth:]
        del self._journal[-depth:]
        for _ in range(depth):
            self.chain.pop_block()
        self.chain.restore_checkpoint(replay[0].checkpoint)
        self.reorgs += 1
        self.orphaned += depth
        perfstats.incr("chaos.chain.reorgs")
        perfstats.incr("chaos.chain.orphaned_blocks", depth)
        trace.event("chain.reorg", depth=depth)

        for old in replay:
            fresh = BlockRecord(checkpoint=self.chain.state_checkpoint())
            for call in old.calls:
                receipt = self.chain.call(
                    call.sender,
                    call.contract,
                    call.method,
                    call.args,
                    value=call.value,
                    gas_limit=call.gas_limit,
                )
                replayed = ExecutedCall(
                    call.tx_id,
                    call.sender,
                    call.contract,
                    call.method,
                    call.args,
                    call.value,
                    call.gas_limit,
                    receipt,
                )
                self._check_replay(call.receipt, receipt)
                fresh.calls.append(replayed)
                if call.tx_id is not None:
                    self.receipts[call.tx_id] = (receipt, self.chain.height)
            fresh.block = self.chain.mine()
            self._journal.append(fresh)
        del self._journal[:-MAX_JOURNAL]

    @staticmethod
    def _check_replay(old: Receipt, new: Receipt) -> None:
        if (old.status, old.gas_used, old.return_value) != (
            new.status,
            new.gas_used,
            new.return_value,
        ):
            raise BlockchainError(
                "reorg replay diverged from the orphaned execution "
                f"(status {old.status}->{new.status}, gas {old.gas_used}->{new.gas_used})"
            )
