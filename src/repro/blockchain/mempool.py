"""The mempool: staged contract calls awaiting block inclusion.

The synchronous settlement path executes every contract call the moment it
is made — there is no window between "transaction sent" and "transaction
sealed" for a chain-level fault to land on.  Block-mode settlement opens
that window deliberately: settlement calls are *staged* here, and the
:class:`~repro.blockchain.block_builder.BlockBuilder` drains the pool into
blocks under the chain's gas limit.

Inclusion order is the standard fee-market rule, made fully deterministic:

* higher ``gas_price`` first,
* ties broken by arrival sequence (first staged, first included),
* subject to per-sender nonce order — a sender's later staging can never
  execute before its earlier one, whatever the prices say.

Duplicate protection is two-fold: a staged ``tx_id`` can never be staged
again (idempotent re-submission), and two live stagings can never claim the
same ``(sender, nonce)`` slot (no in-pool replacement — this chain has no
fee-bump semantics).  Both reject with
:class:`~repro.common.errors.MempoolError`.

``hold_until`` models late inclusion (the ``DELAY`` chain fault): a staged
call is invisible to the builder until the chain reaches that height, so a
settlement can be provably *late* without ever being lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common import perfstats
from ..common.errors import MempoolError
from .chain import DEFAULT_GAS_LIMIT, Blockchain
from .contract import Contract

#: Default gas price for staged calls (the simulated chain has no fee
#: auction; tests raise it to exercise price-priority ordering).
DEFAULT_GAS_PRICE = 1


@dataclass(frozen=True)
class PendingCall:
    """One staged contract call: everything needed to execute it later."""

    tx_id: object
    sender: bytes
    contract: Contract
    method: str
    args: tuple
    value: int
    gas_limit: int
    gas_price: int
    nonce: int
    seq: int
    hold_until: int = 0

    @property
    def priority(self) -> tuple[int, int]:
        """Sort key: price descending, then arrival order."""
        return (-self.gas_price, self.seq)


class Mempool:
    """Deterministic fee-ordered pool of :class:`PendingCall`s."""

    def __init__(self, chain: Blockchain) -> None:
        self.chain = chain
        self._pool: dict[object, PendingCall] = {}
        self._seen_ids: set = set()
        self._seq = 0

    def __len__(self) -> int:
        return len(self._pool)

    def __contains__(self, tx_id: object) -> bool:
        return tx_id in self._pool

    # ---------------------------------------------------------------- stage

    def next_nonce(self, sender: bytes) -> int:
        """The nonce a new staging by ``sender`` will execute with."""
        executed = self.chain.accounts[sender].nonce
        staged = sum(1 for call in self._pool.values() if call.sender == sender)
        return executed + staged

    def stage(
        self,
        sender: bytes,
        contract: Contract,
        method: str,
        args: tuple = (),
        *,
        value: int = 0,
        gas_limit: int = DEFAULT_GAS_LIMIT,
        gas_price: int = DEFAULT_GAS_PRICE,
        tx_id: object = None,
        hold_until: int = 0,
    ) -> PendingCall:
        """Admit one call to the pool; returns the staged :class:`PendingCall`.

        ``tx_id`` defaults to the ``(sender, nonce)`` slot.  Re-staging an
        id that was ever admitted — still pooled *or* already included — is
        rejected: that is the duplicate re-submission guard the conformance
        matrix leans on.
        """
        nonce = self.next_nonce(sender)
        if tx_id is None:
            tx_id = (bytes(sender), nonce)
        if tx_id in self._seen_ids:
            perfstats.incr("mempool.rejected.duplicate")
            raise MempoolError(f"transaction {tx_id!r} already staged")
        if any(
            c.sender == sender and c.nonce == nonce for c in self._pool.values()
        ):  # unreachable via next_nonce; guards direct PendingCall admission
            perfstats.incr("mempool.rejected.nonce")
            raise MempoolError(f"nonce {nonce} already staged for this sender")
        if gas_limit > self.chain.config.block_gas_limit:
            perfstats.incr("mempool.rejected.oversize")
            raise MempoolError("transaction gas limit exceeds the block gas limit")
        call = PendingCall(
            tx_id=tx_id,
            sender=bytes(sender),
            contract=contract,
            method=method,
            args=tuple(args),
            value=value,
            gas_limit=gas_limit,
            gas_price=gas_price,
            nonce=nonce,
            seq=self._seq,
            hold_until=hold_until,
        )
        self._seq += 1
        self._seen_ids.add(tx_id)
        self._pool[tx_id] = call
        perfstats.incr("mempool.staged")
        return call

    def requeue(self, call: PendingCall) -> None:
        """Put an already-admitted call back (reorg replay path only)."""
        self._pool[call.tx_id] = call

    # ----------------------------------------------------------- inclusion

    def eligible(self, height: int) -> list[PendingCall]:
        """Pool contents includable at ``height``, in inclusion order.

        Fee-priority order with the per-sender nonce constraint applied: a
        call only appears once every lower-nonce call from the same sender
        has appeared before it (a held or pricier-later sibling therefore
        holds its whole sender lane back).
        """
        ripe = sorted(
            (c for c in self._pool.values() if c.hold_until <= height),
            key=lambda c: c.priority,
        )
        # Per-sender lane: the sorted nonces still pooled (held ones too —
        # a held earlier staging blocks the sender's whole lane).
        lanes: dict[bytes, list[int]] = {}
        for call in self._pool.values():
            lanes.setdefault(call.sender, []).append(call.nonce)
        for nonces in lanes.values():
            nonces.sort()
        out: list[PendingCall] = []
        placed: dict[bytes, set[int]] = {}
        progressed = True
        remaining = ripe
        while progressed and remaining:
            progressed, deferred = False, []
            for call in remaining:
                done = placed.setdefault(call.sender, set())
                if all(n in done for n in lanes[call.sender] if n < call.nonce):
                    out.append(call)
                    done.add(call.nonce)
                    progressed = True
                else:
                    deferred.append(call)
            remaining = deferred
        return out

    def take(self, height: int, gas_budget: int) -> list[PendingCall]:
        """Pop the calls one block at ``height`` can execute.

        Walks the eligible order, skipping (not popping) any call whose
        declared ``gas_limit`` overflows the remaining budget — and, to
        preserve nonce order, everything later in that sender's lane.
        """
        chosen: list[PendingCall] = []
        skipped_senders: set[bytes] = set()
        budget = gas_budget
        for call in self.eligible(height):
            if call.sender in skipped_senders or call.gas_limit > budget:
                skipped_senders.add(call.sender)
                continue
            chosen.append(call)
            budget -= call.gas_limit
        for call in chosen:
            del self._pool[call.tx_id]
        perfstats.incr("mempool.included", len(chosen))
        return chosen
