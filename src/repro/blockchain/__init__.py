"""Simulated Ethereum-like blockchain substrate with EVM-calibrated gas."""

from .accounts import Account, address_from_label, contract_address, format_address
from .block import Block, BlockHeader, make_block
from .chain import Blockchain, ChainConfig, DEFAULT_GAS_LIMIT
from .contract import Contract, GasMeter
from .gas import GasSchedule
from .proofs import InclusionProof, prove_inclusion, verify_inclusion
from .slicer_contract import (
    ChainTokenResult,
    SlicerContract,
    response_to_chain_args,
    tokens_digest_input,
)
from .transaction import LogEvent, Receipt, Transaction, encode_calldata

__all__ = [
    "Account",
    "Block",
    "BlockHeader",
    "Blockchain",
    "ChainConfig",
    "ChainTokenResult",
    "Contract",
    "DEFAULT_GAS_LIMIT",
    "GasMeter",
    "GasSchedule",
    "InclusionProof",
    "LogEvent",
    "prove_inclusion",
    "verify_inclusion",
    "Receipt",
    "SlicerContract",
    "Transaction",
    "address_from_label",
    "contract_address",
    "encode_calldata",
    "format_address",
    "make_block",
    "response_to_chain_args",
    "tokens_digest_input",
]
