"""Simulated Ethereum-like blockchain substrate with EVM-calibrated gas."""

from .accounts import Account, address_from_label, contract_address, format_address
from .block import Block, BlockHeader, make_block, settlement_leaves
from .block_builder import BlockBuilder, BlockRecord, ExecutedCall
from .chain import Blockchain, ChainConfig, DEFAULT_GAS_LIMIT
from .contract import Contract, GasMeter
from .gas import GasSchedule
from .light_client import LightClient, follow
from .mempool import DEFAULT_GAS_PRICE, Mempool, PendingCall
from .proofs import (
    InclusionProof,
    SettlementProof,
    merkle_path,
    prove_inclusion,
    prove_settlement,
    verify_inclusion,
    verify_settlement,
)
from .slicer_contract import (
    ChainTokenResult,
    SlicerContract,
    response_to_chain_args,
    tokens_digest_input,
)
from .transaction import LogEvent, Receipt, Transaction, encode_calldata

__all__ = [
    "Account",
    "Block",
    "BlockBuilder",
    "BlockHeader",
    "BlockRecord",
    "Blockchain",
    "ChainConfig",
    "ChainTokenResult",
    "Contract",
    "DEFAULT_GAS_LIMIT",
    "DEFAULT_GAS_PRICE",
    "ExecutedCall",
    "GasMeter",
    "GasSchedule",
    "InclusionProof",
    "LightClient",
    "LogEvent",
    "Mempool",
    "PendingCall",
    "Receipt",
    "SettlementProof",
    "SlicerContract",
    "Transaction",
    "address_from_label",
    "contract_address",
    "encode_calldata",
    "follow",
    "format_address",
    "make_block",
    "merkle_path",
    "prove_inclusion",
    "prove_settlement",
    "response_to_chain_args",
    "settlement_leaves",
    "tokens_digest_input",
    "verify_inclusion",
    "verify_settlement",
]
