"""Blocks and the hash-linked header chain."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..common.encoding import encode_parts, encode_uint
from .transaction import Receipt, Transaction

GENESIS_PARENT = b"\x00" * 32

#: Empty-tree commitment (also the ``settlement_root`` of a block that
#: settled nothing, so pre-existing headers stay constructible).
EMPTY_ROOT = b"\x00" * 32


@dataclass(frozen=True)
class BlockHeader:
    """Minimal PoA-style header: number, parent link, tx/receipt commitments.

    ``settlement_root`` commits to the block's settlement verdicts (one leaf
    per ``QuerySettled`` event, see :func:`settlement_leaves`) so a light
    client can check *how an escrow settled* from the header alone, without
    replaying receipts.
    """

    number: int
    parent_hash: bytes
    tx_root: bytes
    receipt_root: bytes
    sealer: bytes
    timestamp: int
    settlement_root: bytes = EMPTY_ROOT

    def hash(self) -> bytes:
        return hashlib.sha256(
            encode_parts(
                encode_uint(self.number),
                self.parent_hash,
                self.tx_root,
                self.receipt_root,
                self.sealer,
                encode_uint(self.timestamp),
                self.settlement_root,
            )
        ).digest()


@dataclass
class Block:
    header: BlockHeader
    transactions: list[Transaction] = field(default_factory=list)
    receipts: list[Receipt] = field(default_factory=list)

    @property
    def number(self) -> int:
        return self.header.number

    def hash(self) -> bytes:
        return self.header.hash()


def merkleize(items: list[bytes]) -> bytes:
    """Binary-tree commitment over a byte-string list (empty list -> zeros)."""
    if not items:
        return EMPTY_ROOT
    layer = [hashlib.sha256(b"\x00" + item).digest() for item in items]
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer), 2):
            right = layer[i + 1] if i + 1 < len(layer) else layer[i]
            nxt.append(hashlib.sha256(b"\x01" + layer[i] + right).digest())
        layer = nxt
    return layer[0]


def settlement_leaf(tx_hash: bytes, query_id: bytes, verified: bytes) -> bytes:
    """Leaf encoding for one ``QuerySettled`` verdict.

    Binding the settling transaction's hash into the leaf keeps leaves
    unique even if (hypothetically) two transactions settled the same query
    id, and lets a proof name the transaction that carried the verdict.
    """
    return encode_parts(tx_hash, query_id, verified)


def settlement_leaves(receipts: list[Receipt]) -> list[bytes]:
    """Settlement leaves of a block, in receipt order.

    Only successful receipts carry logs (reverted calls are rolled back
    wholesale), so every ``QuerySettled`` event here is a verdict that
    actually took effect.
    """
    leaves: list[bytes] = []
    for receipt in receipts:
        for event in receipt.logs:
            if event.name == "QuerySettled":
                leaves.append(
                    settlement_leaf(
                        receipt.tx_hash,
                        bytes(event.get("query_id")),
                        bytes(event.get("verified")),
                    )
                )
    return leaves


def make_block(
    number: int,
    parent_hash: bytes,
    transactions: list[Transaction],
    receipts: list[Receipt],
    sealer: bytes,
    timestamp: int,
) -> Block:
    header = BlockHeader(
        number=number,
        parent_hash=parent_hash,
        tx_root=merkleize([tx.hash() for tx in transactions]),
        receipt_root=merkleize([r.tx_hash + (b"\x01" if r.status else b"\x00") for r in receipts]),
        sealer=sealer,
        timestamp=timestamp,
        settlement_root=merkleize(settlement_leaves(receipts)),
    )
    return Block(header, list(transactions), list(receipts))
