"""Blocks and the hash-linked header chain."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..common.encoding import encode_parts, encode_uint
from .transaction import Receipt, Transaction

GENESIS_PARENT = b"\x00" * 32


@dataclass(frozen=True)
class BlockHeader:
    """Minimal PoA-style header: number, parent link, tx/receipt commitments."""

    number: int
    parent_hash: bytes
    tx_root: bytes
    receipt_root: bytes
    sealer: bytes
    timestamp: int

    def hash(self) -> bytes:
        return hashlib.sha256(
            encode_parts(
                encode_uint(self.number),
                self.parent_hash,
                self.tx_root,
                self.receipt_root,
                self.sealer,
                encode_uint(self.timestamp),
            )
        ).digest()


@dataclass
class Block:
    header: BlockHeader
    transactions: list[Transaction] = field(default_factory=list)
    receipts: list[Receipt] = field(default_factory=list)

    @property
    def number(self) -> int:
        return self.header.number

    def hash(self) -> bytes:
        return self.header.hash()


def merkleize(items: list[bytes]) -> bytes:
    """Binary-tree commitment over a byte-string list (empty list -> zeros)."""
    if not items:
        return b"\x00" * 32
    layer = [hashlib.sha256(b"\x00" + item).digest() for item in items]
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer), 2):
            right = layer[i + 1] if i + 1 < len(layer) else layer[i]
            nxt.append(hashlib.sha256(b"\x01" + layer[i] + right).digest())
        layer = nxt
    return layer[0]


def make_block(
    number: int,
    parent_hash: bytes,
    transactions: list[Transaction],
    receipts: list[Receipt],
    sealer: bytes,
    timestamp: int,
) -> Block:
    header = BlockHeader(
        number=number,
        parent_hash=parent_hash,
        tx_root=merkleize([tx.hash() for tx in transactions]),
        receipt_root=merkleize([r.tx_hash + (b"\x01" if r.status else b"\x00") for r in receipts]),
        sealer=sealer,
        timestamp=timestamp,
    )
    return Block(header, list(transactions), list(receipts))
