"""Gas-metered contract runtime.

Contracts are Python classes whose public methods execute inside a metered
context: storage reads/writes, hashing, modexp and event emission all charge
an EVM-calibrated :class:`~repro.blockchain.gas.GasSchedule` through the
per-call :class:`GasMeter`.  The chain snapshots storage and balances before
each call, so a :class:`~repro.common.errors.ContractRevert` (or running out
of gas) rolls back state while still consuming gas — matching EVM semantics
closely enough for the paper's Table II to be reproduced.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..common.errors import ContractRevert, OutOfGasError, StateError
from .gas import GasSchedule
from .transaction import LogEvent


@dataclass
class GasMeter:
    """Tracks gas for one call, with an itemised breakdown for reporting."""

    limit: int
    schedule: GasSchedule
    used: int = 0
    breakdown: dict[str, int] = field(default_factory=dict)

    def charge(self, amount: int, label: str) -> None:
        if amount < 0:
            raise StateError("negative gas charge")
        self.used += amount
        self.breakdown[label] = self.breakdown.get(label, 0) + amount
        if self.used > self.limit:
            raise OutOfGasError(f"gas limit {self.limit} exceeded at {self.used} ({label})")


class Contract:
    """Base class for on-chain programs.

    Subclasses implement ``init(...)`` (the constructor body, already
    metered) and public methods.  Inside a method, use the ``_sload`` /
    ``_sstore`` / ``_keccak`` / ``_modexp`` / ``_emit`` / ``_transfer`` /
    ``_require`` helpers so every state touch is charged.
    """

    #: Estimated deployed bytecode size; drives the code-deposit charge.
    CODE_SIZE = 1024

    def __init__(self) -> None:
        self.address: bytes = b""
        self.chain = None  # set by Blockchain.deploy
        self._storage: dict[bytes, bytes] = {}
        self._meter: GasMeter | None = None
        self._warm_slots: set[bytes] = set()
        self._logs: list[LogEvent] = []
        self._caller: bytes = b""
        self._call_value: int = 0

    # ----------------------------------------------------- runtime wiring

    def _begin_call(self, meter: GasMeter, caller: bytes, value: int) -> None:
        self._meter = meter
        self._warm_slots = set()
        self._logs = []
        self._caller = caller
        self._call_value = value

    def _end_call(self) -> list[LogEvent]:
        logs, self._logs = self._logs, []
        self._meter = None
        return logs

    def _snapshot(self) -> dict[bytes, bytes]:
        return dict(self._storage)

    def _restore(self, snapshot: dict[bytes, bytes]) -> None:
        self._storage = snapshot

    @property
    def meter(self) -> GasMeter:
        if self._meter is None:
            raise StateError("contract method executed outside a metered call")
        return self._meter

    @property
    def caller(self) -> bytes:
        """``msg.sender`` of the current call."""
        return self._caller

    @property
    def call_value(self) -> int:
        """``msg.value`` of the current call."""
        return self._call_value

    # --------------------------------------------------------- EVM helpers

    def _slot(self, name: str) -> bytes:
        return hashlib.sha256(b"slot:" + name.encode("utf-8")).digest()

    def _sload(self, name: str) -> bytes:
        slot = self._slot(name)
        schedule = self.meter.schedule
        words = schedule.storage_words(len(self._storage.get(slot, b"\x00")))
        if slot in self._warm_slots:
            self.meter.charge(schedule.sload_warm * words, "sload")
        else:
            self._warm_slots.add(slot)
            self.meter.charge(schedule.sload_cold * words, "sload")
        return self._storage.get(slot, b"")

    def _sstore(self, name: str, value: bytes) -> None:
        slot = self._slot(name)
        schedule = self.meter.schedule
        words = schedule.storage_words(len(value))
        previous = self._storage.get(slot)
        if slot in self._warm_slots and previous == value:
            self.meter.charge(schedule.sstore_warm * words, "sstore")
        elif previous is None or previous == b"":
            self.meter.charge(schedule.sstore_set * words, "sstore")
        else:
            self.meter.charge(schedule.sstore_reset * words, "sstore")
        self._warm_slots.add(slot)
        self._storage[slot] = value

    def _sload_int(self, name: str) -> int:
        return int.from_bytes(self._sload(name), "big")

    def _sstore_int(self, name: str, value: int, width: int | None = None) -> None:
        width = width or max(1, (value.bit_length() + 7) // 8)
        self._sstore(name, value.to_bytes(width, "big"))

    def _keccak(self, data: bytes) -> bytes:
        self.meter.charge(self.meter.schedule.keccak_gas(len(data)), "keccak")
        return hashlib.sha256(data).digest()

    def _modexp(self, base: int, exponent: int, modulus: int) -> int:
        base_len = max(1, (base.bit_length() + 7) // 8)
        mod_len = max(1, (modulus.bit_length() + 7) // 8)
        self.meter.charge(
            self.meter.schedule.modexp_gas(base_len, exponent, mod_len), "modexp"
        )
        return pow(base, exponent, modulus)

    def _mulmod(self, a: int, b: int, modulus: int) -> int:
        self.meter.charge(self.meter.schedule.mulmod, "mulmod")
        return (a * b) % modulus

    def _emit(self, name: str, **fields: object) -> None:
        data_bytes = sum(
            len(v) if isinstance(v, (bytes, bytearray)) else 32 for v in fields.values()
        )
        self.meter.charge(self.meter.schedule.log_gas(1, data_bytes), "log")
        self._logs.append(LogEvent(self.address, name, tuple(fields.items())))

    def _transfer(self, to: bytes, amount: int) -> None:
        """Move value from the contract's balance to ``to``."""
        if self.chain is None:
            raise StateError("contract not attached to a chain")
        self.meter.charge(self.meter.schedule.call_value_transfer, "transfer")
        self.chain._contract_transfer(self.address, to, amount)

    @staticmethod
    def _require(condition: bool, reason: str) -> None:
        if not condition:
            raise ContractRevert(reason)

    # ------------------------------------------------------------- default

    def init(self, *args: object) -> None:
        """Constructor body; subclasses override."""
