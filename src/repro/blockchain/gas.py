"""EVM-calibrated gas schedule.

The paper reports Table II in *gas units* measured on the Rinkeby testnet.
Gas is a deterministic function of the operations a contract performs, so we
reproduce it by metering our simulated contract with Ethereum's published
cost constants:

* intrinsic transaction costs and calldata pricing (EIP-2028),
* storage access (EIP-2929 cold/warm SLOAD, net-metered SSTORE),
* KECCAK256 hashing,
* the MODEXP precompile (EIP-2565) — the dominant term of ``VerifyMem``,
* LOG events and the per-byte code-deposit charge for deployment.

The schedule is a frozen dataclass so benchmarks can also run what-if
scenarios (e.g. pre-EIP-2565 modexp pricing) by swapping one object.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GasSchedule:
    """Cost constants, mainnet values as of the paper's era (London)."""

    tx_base: int = 21_000
    tx_create: int = 32_000
    tx_data_zero: int = 4
    tx_data_nonzero: int = 16
    code_deposit_per_byte: int = 200

    sload_cold: int = 2_100
    sload_warm: int = 100
    sstore_set: int = 20_000
    sstore_reset: int = 5_000
    sstore_warm: int = 100
    cold_account_access: int = 2_600

    keccak_base: int = 30
    keccak_word: int = 6

    log_base: int = 375
    log_topic: int = 375
    log_data_byte: int = 8

    call_value_transfer: int = 9_000
    memory_word: int = 3

    modexp_min: int = 200
    mulmod: int = 8

    # ------------------------------------------------------------- helpers

    def calldata_gas(self, data: bytes) -> int:
        """Per-byte calldata pricing (EIP-2028: 4 zero / 16 non-zero)."""
        zeros = data.count(0)
        return zeros * self.tx_data_zero + (len(data) - zeros) * self.tx_data_nonzero

    def keccak_gas(self, nbytes: int) -> int:
        """KECCAK256 over ``nbytes`` of memory."""
        words = (nbytes + 31) // 32
        return self.keccak_base + self.keccak_word * words

    def log_gas(self, topics: int, data_bytes: int) -> int:
        return self.log_base + self.log_topic * topics + self.log_data_byte * data_bytes

    def modexp_gas(self, base_len: int, exponent: int, mod_len: int) -> int:
        """EIP-2565 MODEXP precompile pricing.

        ``max(200, mult_complexity * iteration_count / 3)`` with
        ``mult_complexity = ceil(max(base_len, mod_len)/8)^2``.  This is the
        term that makes ``VerifyMem`` (one ``witness^x mod n``) the dominant
        cost of on-chain result verification.
        """
        exp_len = max(1, (exponent.bit_length() + 7) // 8)
        words = (max(base_len, mod_len) + 7) // 8
        mult_complexity = words * words
        if exp_len <= 32:
            iteration_count = max(exponent.bit_length() - 1, 0)
        else:
            head = exponent >> (8 * (exp_len - 32))
            # EIP-2565 uses the *low* 256 bits of the exponent head; for our
            # use (exponents up to a few hundred bits) the head term covers it.
            iteration_count = 8 * (exp_len - 32) + max(head.bit_length() - 1, 0)
        iteration_count = max(iteration_count, 1)
        return max(self.modexp_min, mult_complexity * iteration_count // 3)

    def storage_words(self, nbytes: int) -> int:
        """How many 32-byte storage slots a value of ``nbytes`` occupies."""
        return max(1, (nbytes + 31) // 32)
