"""Light client: header-chain tracking + inclusion/settlement checking.

The data user's freshness guarantee rests on the blockchain being a trusted
anchor, but a user device should not need to replay every transaction.  A
light client keeps only the *headers* (checking parent links and the PoA
sealer rotation) and verifies specific facts against them:

* that a transaction — e.g. the owner's latest ``update_ads`` — is included
  in a sealed block (Merkle inclusion against the header's tx root),
* that a specific escrow settled with a specific verdict (a
  :class:`~repro.blockchain.proofs.SettlementProof` against the header's
  settlement root — block-mode settlement's "verify your verdict without
  replaying the chain" path), and
* that the header chain it follows is internally consistent — *including
  across reorgs*: when the tracked chain orphans blocks, :meth:`sync` walks
  back to the last common header and replaces the orphaned suffix, instead
  of wedging on a parent-link mismatch.

This closes the loop on the paper's multi-user freshness story: a user can
convince itself the ``Ac`` digest it relies on was anchored on chain,
without trusting the cloud or replaying state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common import perfstats
from ..common.errors import BlockchainError
from .accounts import address_from_label
from .block import GENESIS_PARENT, BlockHeader
from .chain import Blockchain
from .proofs import InclusionProof, SettlementProof, verify_inclusion, verify_settlement


@dataclass
class LightClient:
    """Tracks headers only; verifies inclusion proofs against them."""

    sealers: tuple[str, ...]
    headers: list[BlockHeader] = field(default_factory=list)
    #: Headers discarded across all reorgs this client has followed.
    orphaned: int = 0

    def __post_init__(self) -> None:
        self._sealer_addresses = [address_from_label(s) for s in self.sealers]

    @property
    def height(self) -> int:
        return len(self.headers)

    # ------------------------------------------------------------- syncing

    def accept_header(self, header: BlockHeader) -> None:
        """Validate and append one header (parent link + sealer rotation)."""
        expected_parent = self.headers[-1].hash() if self.headers else GENESIS_PARENT
        if header.number != len(self.headers):
            raise BlockchainError(
                f"expected header #{len(self.headers)}, got #{header.number}"
            )
        if header.parent_hash != expected_parent:
            raise BlockchainError("header does not extend the tracked chain")
        expected_sealer = self._sealer_addresses[
            header.number % len(self._sealer_addresses)
        ]
        if header.sealer != expected_sealer:
            raise BlockchainError("header sealed by an unauthorised sealer")
        self.headers.append(header)

    def _rewind_to_ancestor(self, chain: Blockchain) -> int:
        """Drop tracked headers the chain no longer has; returns the count.

        After a reorg the chain's block at some height hashes differently
        from the header this client accepted for it.  Headers are compared
        by hash from the tip down to the last agreement point; everything
        above it is orphaned.  Validity of the replacement headers is *not*
        assumed — they go back through :meth:`accept_header`.
        """
        keep = min(len(self.headers), len(chain.blocks))
        while keep > 0 and self.headers[keep - 1].hash() != chain.blocks[keep - 1].hash():
            keep -= 1
        dropped = len(self.headers) - keep
        if dropped:
            del self.headers[keep:]
            self.orphaned += dropped
            perfstats.incr("light_client.orphaned_headers", dropped)
        return dropped

    def sync(self, chain: Blockchain) -> int:
        """Pull headers the client has not seen; returns newly accepted count.

        Reorg-aware: tracked headers the chain has since orphaned are
        discarded back to the common ancestor before the new suffix is
        validated and accepted.  (The pre-reorg behaviour — blindly slicing
        ``chain.blocks[len(self.headers):]`` — wedged on the first
        replacement header's parent-link mismatch and silently kept proofs
        anchored in orphaned headers checking out.)
        """
        self._rewind_to_ancestor(chain)
        new = 0
        for block in chain.blocks[len(self.headers) :]:
            self.accept_header(block.header)
            new += 1
        return new

    # ---------------------------------------------------------- inclusion

    def check_inclusion(self, proof: InclusionProof) -> bool:
        """Is the proven transaction inside a header this client accepted?"""
        if not 0 <= proof.block_number < len(self.headers):
            return False
        return verify_inclusion(self.headers[proof.block_number].tx_root, proof)

    def check_settlement(self, proof: SettlementProof) -> bool:
        """Did the proven escrow settle, with that verdict, in that block?

        True iff the proof's ``(tx_hash, query_id, verified)`` claim folds
        to the ``settlement_root`` of a header this client accepted — the
        settlement verdict is then as trustworthy as the header chain,
        with no receipt replay.
        """
        if not 0 <= proof.block_number < len(self.headers):
            return False
        return verify_settlement(
            self.headers[proof.block_number].settlement_root, proof
        )


def follow(chain: Blockchain) -> LightClient:
    """Create a light client for ``chain``'s sealer set and sync it."""
    client = LightClient(chain.config.sealers)
    client.sync(chain)
    return client
