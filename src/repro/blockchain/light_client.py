"""Light client: header-chain tracking + inclusion checking.

The data user's freshness guarantee rests on the blockchain being a trusted
anchor, but a user device should not need to replay every transaction.  A
light client keeps only the *headers* (checking parent links and the PoA
sealer rotation) and verifies specific facts against them:

* that a transaction — e.g. the owner's latest ``update_ads`` — is included
  in a sealed block (Merkle inclusion against the header's tx root), and
* that the header chain it follows is internally consistent.

This closes the loop on the paper's multi-user freshness story: a user can
convince itself the ``Ac`` digest it relies on was anchored on chain,
without trusting the cloud or replaying state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import BlockchainError
from .accounts import address_from_label
from .block import GENESIS_PARENT, BlockHeader
from .chain import Blockchain
from .proofs import InclusionProof, verify_inclusion


@dataclass
class LightClient:
    """Tracks headers only; verifies inclusion proofs against them."""

    sealers: tuple[str, ...]
    headers: list[BlockHeader] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._sealer_addresses = [address_from_label(s) for s in self.sealers]

    @property
    def height(self) -> int:
        return len(self.headers)

    # ------------------------------------------------------------- syncing

    def accept_header(self, header: BlockHeader) -> None:
        """Validate and append one header (parent link + sealer rotation)."""
        expected_parent = self.headers[-1].hash() if self.headers else GENESIS_PARENT
        if header.number != len(self.headers):
            raise BlockchainError(
                f"expected header #{len(self.headers)}, got #{header.number}"
            )
        if header.parent_hash != expected_parent:
            raise BlockchainError("header does not extend the tracked chain")
        expected_sealer = self._sealer_addresses[
            header.number % len(self._sealer_addresses)
        ]
        if header.sealer != expected_sealer:
            raise BlockchainError("header sealed by an unauthorised sealer")
        self.headers.append(header)

    def sync(self, chain: Blockchain) -> int:
        """Pull any headers the client has not seen yet; returns new count."""
        new = 0
        for block in chain.blocks[len(self.headers) :]:
            self.accept_header(block.header)
            new += 1
        return new

    # ---------------------------------------------------------- inclusion

    def check_inclusion(self, proof: InclusionProof) -> bool:
        """Is the proven transaction inside a header this client accepted?"""
        if not 0 <= proof.block_number < len(self.headers):
            return False
        return verify_inclusion(self.headers[proof.block_number].tx_root, proof)


def follow(chain: Blockchain) -> LightClient:
    """Create a light client for ``chain``'s sealer set and sync it."""
    client = LightClient(chain.config.sealers)
    client.sync(chain)
    return client
