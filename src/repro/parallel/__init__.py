"""Parallel execution engine for the protocol hot paths.

The paper's headline costs — Build/Insert index construction (Figs. 3, 7)
and search-side VO generation (Fig. 5d) — are embarrassingly parallel once
the sequential state transitions (trapdoor sampling/advance, RNG draws) are
peeled off into a cheap serial staging pass.  This package provides:

* :class:`ParallelExecutor` — a deterministic chunking executor over
  ``concurrent.futures``.  Items are split into contiguous chunks, each
  chunk is processed by a module-level task function in a forked worker
  process, and results are merged back **in item order**, so parallel and
  serial runs produce byte-identical output.  Falls back to in-process
  execution when ``workers <= 1``, when the platform cannot fork, or when
  the input is too small to amortise the fan-out cost.
* :mod:`repro.parallel.tasks` — the picklable task functions the protocol
  fans out: per-keyword index construction, ``H_prime`` derivation, epoch
  walks, root-factor witness subtrees and witness-cache exponentiations.

The worker count is a :class:`~repro.core.params.SlicerParams` knob
(``workers``), resolved through the ``REPRO_WORKERS`` environment variable
when left at its ``0`` ("auto") default.  See DESIGN.md §7 for the
determinism contract.
"""

from .executor import WORKERS_ENV, ParallelExecutor, resolve_workers

__all__ = ["ParallelExecutor", "resolve_workers", "WORKERS_ENV"]
