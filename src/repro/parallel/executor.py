"""Deterministic chunking executor over ``concurrent.futures``.

Design constraints (see ISSUE 1 / DESIGN.md §7):

* **Determinism** — chunk boundaries never influence results: task
  functions are pure per item, chunks are contiguous slices, and results
  are merged back in item order.  ``workers=1`` and ``workers=N`` therefore
  produce byte-identical protocol output; property tests enforce this.
* **Zero-copy shared state** — the cloud's encrypted index can be hundreds
  of megabytes; pickling it per task would erase any speedup.  Workers are
  forked, so the shared payload is published in a module global right
  before pool creation and inherited by the children for free.  On
  platforms without ``fork`` (or inside processes where forking is unsafe)
  the executor silently degrades to the serial path — correctness never
  depends on parallelism.
* **Serial fallback** — pools cost a few forks per call, so small inputs
  (fewer than :attr:`ParallelExecutor.min_items`) run in-process.
* **No worker-blind metrics** — counters incremented inside a worker (and
  kernel-cache entries it populated) used to die with the process, making
  every ``workers > 0`` run under-report and leave the parent colder than
  the identical serial run.  The worker trampoline now returns
  ``(results, counter_delta, cache_export)``; the parent merges the deltas
  back in chunk order and absorbs the cache entries, so counter snapshots
  are identical at any worker count (``tests/properties/
  test_prop_observability.py`` enforces this).  Only execution-*shape*
  counters (``parallel.*``) legitimately differ between serial and
  fanned-out runs.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
from typing import Any, Callable, Sequence, TypeVar

from ..common import perfstats
from ..common.errors import ParameterError
from ..crypto import kernels

T = TypeVar("T")
R = TypeVar("R")

#: Environment knob consulted when ``workers=0`` ("auto") is requested.
WORKERS_ENV = "REPRO_WORKERS"

#: Below ``min_items`` (default: this multiple of the worker count) the
#: fan-out overhead dominates and the executor stays serial.
_MIN_ITEMS_PER_WORKER = 2

#: Payload inherited by forked workers (set immediately before pool
#: creation, cleared after).  Never read in the parent between calls.
_SHARED: Any = None


def resolve_workers(requested: int | None = 0) -> int:
    """Resolve a worker count: explicit value > ``REPRO_WORKERS`` env > 1.

    ``0``/``None`` means "auto" (consult the environment), a negative value
    or the env string ``"auto"`` means "all CPU cores".
    """
    if requested is None:
        requested = 0
    if requested < 0:
        return max(1, os.cpu_count() or 1)
    if requested > 0:
        return requested
    raw = os.environ.get(WORKERS_ENV, "").strip().lower()
    if not raw:
        return 1
    if raw == "auto":
        return max(1, os.cpu_count() or 1)
    try:
        value = int(raw)
    except ValueError as exc:
        raise ParameterError(f"{WORKERS_ENV} must be an integer or 'auto', got {raw!r}") from exc
    return max(1, os.cpu_count() or 1) if value < 0 else max(1, value)


def _fork_context() -> multiprocessing.context.BaseContext | None:
    """The fork start method, or None where unavailable (Windows, some macOS)."""
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def _run_chunk(fn: Callable[[Any, list], list], chunk: list) -> tuple[list, dict, dict]:
    """Worker-side trampoline: re-attach the fork-inherited shared payload.

    Besides the task results, ships home (a) the counter delta this chunk
    produced — computed against a snapshot taken on entry, so multiple
    chunks handled by one worker each report exactly their own work — and
    (b) the kernel-cache entries added since entry, so the parent's caches
    end up in the same state a serial run would leave them in.
    """
    counter_base = perfstats.snapshot()
    cache_base = kernels.cache_mark()
    results = fn(_SHARED, chunk)
    return results, perfstats.delta_since(counter_base), kernels.export_since(cache_base)


def split_chunks(items: Sequence[T], parts: int) -> list[list[T]]:
    """Split ``items`` into at most ``parts`` contiguous, near-equal chunks."""
    n = len(items)
    parts = max(1, min(parts, n))
    size, extra = divmod(n, parts)
    chunks: list[list[T]] = []
    start = 0
    for i in range(parts):
        stop = start + size + (1 if i < extra else 0)
        chunks.append(list(items[start:stop]))
        start = stop
    return chunks


class ParallelExecutor:
    """Fan work out across processes; merge results deterministically.

    Task functions must be module-level (picklable by reference) with the
    signature ``fn(shared, chunk) -> list`` returning exactly one result per
    chunk item.  ``shared`` is an arbitrary read-only payload reaching the
    workers through fork inheritance, i.e. without serialization.
    """

    def __init__(self, workers: int | None = 0, min_items: int | None = None) -> None:
        self.workers = resolve_workers(workers)
        #: Inputs smaller than this run serially; tests lower it to force
        #: real fan-out on tiny fixtures.
        self.min_items = (
            min_items if min_items is not None else _MIN_ITEMS_PER_WORKER * self.workers
        )

    @property
    def parallel_available(self) -> bool:
        return self.workers > 1 and _fork_context() is not None

    def map_chunks(
        self,
        fn: Callable[[Any, list[T]], list[R]],
        items: Sequence[T],
        shared: Any = None,
    ) -> list[R]:
        """Apply ``fn`` over chunks of ``items``; results in item order.

        Serial and parallel execution are interchangeable: the serial path
        is literally ``fn(shared, list(items))``, and the parallel path
        concatenates the per-chunk outputs of the same function.
        """
        items = list(items)
        if not items:
            return []
        if not self.parallel_available or len(items) < max(2, self.min_items):
            return list(fn(shared, items))
        out = self._dispatch(fn, split_chunks(items, self.workers), shared)
        if len(out) != len(items):
            raise ParameterError(
                f"task function returned {len(out)} results for {len(items)} items"
            )
        return out

    def run_jobs(
        self,
        fn: Callable[[Any, list[T]], list[R]],
        jobs: Sequence[T],
        shared: Any = None,
    ) -> list[R]:
        """Run a *small* list of *large* jobs, one worker per job.

        Unlike :meth:`map_chunks` there is no small-input fallback: callers
        use this when each job already carries enough work (e.g. a witness
        subtree) to amortise a fork.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        if not self.parallel_available or len(jobs) < 2:
            return list(fn(shared, jobs))
        return self._dispatch(fn, [[job] for job in jobs], shared)

    def _dispatch(
        self, fn: Callable[[Any, list[T]], list[R]], chunks: list[list[T]], shared: Any
    ) -> list[R]:
        """Fork a pool, run one task per chunk, merge everything in chunk order.

        "Everything" is results *and* instrumentation: each worker task
        returns ``(results, counter_delta, cache_export)``, and the parent
        folds the deltas into its own counters and absorbs the cache
        entries — the fix for the worker-blind counter bug.  Merging in
        chunk order keeps the whole operation deterministic; absorption is
        idempotent (kernel caches memoize pure functions), so overlapping
        exports from sibling workers are harmless.
        """
        ctx = _fork_context()
        global _SHARED
        _SHARED = shared
        perfstats.incr("parallel.dispatch")
        perfstats.incr("parallel.chunks", len(chunks))
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.workers, len(chunks)), mp_context=ctx
            ) as pool:
                parts = list(pool.map(_run_chunk, [fn] * len(chunks), chunks))
        finally:
            _SHARED = None
        out: list[R] = []
        for results, counter_delta, cache_export in parts:
            out.extend(results)
            perfstats.merge(counter_delta)
            kernels.absorb_cache_export(cache_export)
        return out
