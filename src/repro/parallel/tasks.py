"""Picklable task functions the protocol hot paths fan out.

Every function here follows the executor contract ``fn(shared, chunk) ->
results`` with one result per chunk item, is pure (no process state leaks
back), and operates on plain data — bytes, ints, tuples — so the only
objects crossing the process boundary are small.  Large read-only state
(the cloud's index dictionary, key material) travels through the executor's
fork-inherited ``shared`` payload instead of pickle.

The functions mirror the serial hot loops exactly (same primitive calls in
the same order), which is what makes ``workers=N`` output byte-identical to
``workers=1``; `tests/properties/test_prop_parallel.py` enforces this.
"""

from __future__ import annotations

from typing import NamedTuple

from ..common.bitstring import xor_bytes
from ..common.encoding import encode_uint
from ..crypto import kernels
from ..crypto.hash_to_prime import HashToPrime
from ..crypto.modmath import powmod, product
from ..crypto.multiset_hash import MultisetHash
from ..crypto.prf import PRF
from ..crypto.symmetric import SymmetricCipher
from .executor import ParallelExecutor


# --------------------------------------------------------- owner Build/Insert


class KeywordJob(NamedTuple):
    """One keyword's share of Build/Insert after the serial staging pass.

    The staging pass (owner process) performs every state transition that
    must stay sequential for :class:`~repro.common.rng.DeterministicRNG`
    reproducibility — trapdoor sampling/advance and nonce draws — and
    freezes the results here.  What remains is pure PRF/encrypt/fold work.
    """

    trapdoor: bytes
    epoch: int
    g1: bytes
    g2: bytes
    running_value: int  # multiset-hash value carried over from prior epochs
    postings: tuple[tuple[bytes, bytes], ...]  # (record_id, nonce) per counter


class IndexShared(NamedTuple):
    """Read-only inputs for :func:`index_keyword_chunk`."""

    record_key: bytes
    label_len: int
    field: int  # multiset-hash field modulus q


def index_keyword_chunk(
    shared: IndexShared, jobs: list[KeywordJob]
) -> list[tuple[list[tuple[bytes, bytes]], int]]:
    """Algorithm 1/2 lines 10-16 for a chunk of keywords.

    Per keyword: encrypt each posting's record ID (with its pre-drawn
    nonce), derive the PRF label and pad, and fold the ciphertext into the
    running multiset hash.  Returns ``(entries, folded_hash_value)`` per
    job, entries in counter order.
    """
    cipher = SymmetricCipher(shared.record_key)
    out: list[tuple[list[tuple[bytes, bytes]], int]] = []
    for job in jobs:
        label_prf = PRF(job.g1, shared.label_len)
        pad_prf = PRF(job.g2)
        running = MultisetHash(job.running_value, shared.field)
        entries: list[tuple[bytes, bytes]] = []
        for counter, (record_id, nonce) in enumerate(job.postings):
            record_ct = cipher.encrypt(record_id, nonce)
            label = label_prf.eval(job.trapdoor, encode_uint(counter))
            pad = pad_prf.eval_stream(len(record_ct), job.trapdoor, encode_uint(counter))
            entries.append((label, xor_bytes(pad, record_ct)))
            running = running.add(record_ct)
        out.append((entries, running.value))
    return out


def hash_to_prime_chunk(shared: tuple[int], payloads: list[bytes]) -> list[int]:
    """``H_prime`` over a chunk of (state key || multiset hash) payloads.

    Routed through the per-process kernel memo: a forked worker inherits the
    parent's warm entries at fork time and keeps its own process-local state
    afterwards (kernel caches never cross back — outputs are pure values).
    """
    (prime_bits,) = shared
    if kernels.kernels_enabled():
        h_prime: HashToPrime = kernels.memoized_hash_to_prime(prime_bits)
    else:
        h_prime = HashToPrime(prime_bits)
    return [h_prime(payload) for payload in payloads]


# ---------------------------------------------------------------- cloud search


class CollectShared(NamedTuple):
    """Read-only inputs for :func:`collect_entries_chunk`.

    ``index_entries`` is the cloud's label->payload dictionary and
    ``entry_cache`` the cloud's epoch-suffix cache (None when kernels are
    disabled); both reach workers by fork inheritance, never by pickle.
    Nodes a worker installs travel home through the kernel cache-export
    machinery (the entry cache registers as a cache family), so the parent
    cache ends up exactly as warm as after the identical serial run.
    """

    index_entries: dict[bytes, bytes]
    label_len: int
    trapdoor_public: object  # TrapdoorPublicKey (duck-typed: .apply)
    entry_cache: object | None  # repro.core.entry_cache.EntryCache
    field: int  # multiset-hash field modulus q


class TokenWork(NamedTuple):
    """The fields of one search token a worker needs for the epoch walk."""

    trapdoor: bytes
    epoch: int
    g1: bytes
    g2: bytes


def collect_entries_chunk(shared: CollectShared, tokens: list[TokenWork]) -> list:
    """Algorithm 4's epoch walk for a chunk of tokens (one CollectResult each).

    Runs the *same* cache-aware walk as ``CloudServer._collect`` (the import
    is deferred: ``repro.core`` imports this module at class-definition
    time, so a top-level back-import would cycle).  Tokens within one
    dispatch are unique and distinct keywords have disjoint trapdoor
    chains, so chunk boundaries never change which walks hit or what gets
    installed — output and counters stay byte-identical to the serial loop.
    """
    from ..core.entry_cache import collect_entries

    find = shared.index_entries.get
    return [
        collect_entries(
            shared.entry_cache,
            find,
            shared.label_len,
            shared.trapdoor_public,
            shared.field,
            token.trapdoor,
            token.epoch,
            token.g1,
            token.g2,
        )
        for token in tokens
    ]


def shard_collect_chunk(
    shared: tuple[CollectShared, ...], jobs: list[tuple[int, tuple[TokenWork, ...]]]
) -> list[list]:
    """Per-shard collection fan-out: one job = one shard's unique tokens.

    ``shared`` holds one :class:`CollectShared` per live shard (each wrapping
    that shard's fork-inherited index slice and entry cache); a job is
    ``(shared_slot, tokens)``.  Inside a job the walk is exactly
    :func:`collect_entries_chunk`, so per-shard results, counters and cache
    exports match the shard serving itself serially bit for bit — only the
    work schedule (one worker per shard instead of a flat token-chunk pool)
    differs.
    """
    return [
        collect_entries_chunk(shared[slot], list(tokens)) for slot, tokens in jobs
    ]


# ---------------------------------------------------- witness generation / cache


def root_factor(base: int, primes: list[int], modulus: int) -> dict[int, int]:
    """Sander-Ta-Shma root-factor recursion: ``{p: base^(prod(primes)/p)}``.

    ``O(k log k)`` exponentiations for ``k`` primes instead of ``O(k^2)``.
    The recursion shape does not influence the outputs, only the work
    schedule, so subtrees can be evaluated independently.
    """
    out: dict[int, int] = {}
    if not primes:
        return out
    stack: list[tuple[int, list[int]]] = [(base, list(primes))]
    while stack:
        current, subset = stack.pop()
        if len(subset) == 1:
            out[subset[0]] = current
            continue
        mid = len(subset) // 2
        left, right = subset[:mid], subset[mid:]
        # Same node value raised to both sibling exponents: witness_pow's
        # single-slot wNAF kernel reuses the odd-power table across the pair.
        stack.append((kernels.witness_pow(current, product(right), modulus), left))
        stack.append((kernels.witness_pow(current, product(left), modulus), right))
    return out


def witness_subtree_chunk(
    shared: tuple[int], jobs: list[tuple[int, list[int]]]
) -> list[dict[int, int]]:
    """Root-factor recursion over a chunk of ``(base, primes)`` subtrees."""
    (modulus,) = shared
    return [root_factor(base, primes, modulus) for base, primes in jobs]


def witness_map(
    base: int,
    primes: list[int],
    modulus: int,
    executor: ParallelExecutor | None = None,
) -> dict[int, int]:
    """``{p: base^(prod(primes)/p) mod modulus}`` — parallel when it pays.

    The recursion tree is split at depth ``~log2(workers)``: the parent
    computes the subtree bases serially (a handful of full-width
    exponentiations), then farms each subtree's recursion out.  The split
    depth changes the schedule, never the values, so any worker count
    yields identical witnesses.
    """
    primes = list(primes)
    if not primes:
        return {}
    if executor is None or not executor.parallel_available or len(primes) < max(
        2, executor.min_items
    ):
        return root_factor(base, primes, modulus)
    # Serially expand the top of the recursion tree (exactly the steps the
    # serial recursion would take) until one subtree per worker exists.
    jobs: list[tuple[int, list[int]]] = [(base, primes)]
    while len(jobs) < executor.workers:
        jobs.sort(key=lambda job: len(job[1]))
        current, subset = jobs.pop()
        if len(subset) == 1:
            jobs.append((current, subset))
            break
        mid = len(subset) // 2
        left, right = subset[:mid], subset[mid:]
        jobs.append((kernels.witness_pow(current, product(right), modulus), left))
        jobs.append((kernels.witness_pow(current, product(left), modulus), right))
    results = executor.run_jobs(witness_subtree_chunk, jobs, shared=(modulus,))
    merged: dict[int, int] = {}
    for part in results:
        merged.update(part)
    return merged


def pow_chunk(shared: tuple[int, int], values: list[int]) -> list[int]:
    """Raise a chunk of group elements to a fixed exponent (cache refresh)."""
    exponent, modulus = shared
    return [powmod(value, exponent, modulus) for value in values]
