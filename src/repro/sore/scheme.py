"""The SORE scheme ``Pi = {Token, Encrypt, Compare}`` (paper Section V.B).

Succinct Order-Revealing Encryption: each side of a comparison is a set of
*b* PRF images of slices, and ``Compare`` outputs True iff the two sets share
**exactly one** element.  The PRF hides the slice contents; shuffling hides
which bit index matched within a single comparison.

The scheme is deliberately *symmetric-key and non-interactive*: anyone
holding the ciphertexts and a token can run ``Compare`` (that is what makes
the result publicly checkable downstream), but producing tokens or
ciphertexts requires the key ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ParameterError
from ..common.rng import DeterministicRNG, default_rng
from ..crypto.prf import PRF
from .tuples import OrderCondition, SoreTuple, ciphertext_tuples, token_tuples


@dataclass(frozen=True)
class SoreCiphertext:
    """The PRF images of a value's slices, in shuffled order."""

    images: tuple[bytes, ...]

    def __len__(self) -> int:
        return len(self.images)


@dataclass(frozen=True)
class SoreToken:
    """The PRF images of a query's slices, in shuffled order."""

    images: tuple[bytes, ...]
    condition: OrderCondition

    def __len__(self) -> int:
        return len(self.images)


class SoreScheme:
    """SORE over ``bits``-bit non-negative integers under PRF key ``key``."""

    def __init__(
        self,
        key: bytes,
        bits: int,
        rng: DeterministicRNG | None = None,
        attribute: str = "",
    ) -> None:
        if bits <= 0:
            raise ParameterError("bit width must be positive")
        self.bits = bits
        self.attribute = attribute
        self._prf = PRF(key)
        self._rng = rng or default_rng()

    # -- the paper's three algorithms ------------------------------------

    def token(self, value: int, oc: OrderCondition) -> SoreToken:
        """``SORE.Token(k, v, oc)``: match all ``a`` with ``value oc a``.

        All *b* slice encodings go through one batched PRF pass (one key
        schedule, *b* evaluations — see :meth:`repro.crypto.prf.PRF.eval_many`).
        """
        images = self._prf.eval_many(
            [t.encode() for t in token_tuples(value, oc, self.bits, self.attribute)]
        )
        self._rng.shuffle(images)
        return SoreToken(tuple(images), oc)

    def encrypt(self, value: int) -> SoreCiphertext:
        """``SORE.Encrypt(k, v)``: one batched PRF pass over the *b* slices."""
        images = self._prf.eval_many(
            [t.encode() for t in ciphertext_tuples(value, self.bits, self.attribute)]
        )
        self._rng.shuffle(images)
        return SoreCiphertext(tuple(images))

    @staticmethod
    def compare(ciphertext: SoreCiphertext, token: SoreToken) -> bool:
        """``SORE.Compare(ct, tk)``: True iff exactly one common PRF image.

        Key-free by construction — comparison only intersects the two image
        sets, which is what a third party (or an index lookup) can do.
        """
        return len(set(ciphertext.images) & set(token.images)) == 1

    # -- helpers used by tests and the leakage analysis -------------------

    def common_image_count(self, ciphertext: SoreCiphertext, token: SoreToken) -> int:
        """Number of shared PRF images (Theorem 1 says this is 0 or 1)."""
        return len(set(ciphertext.images) & set(token.images))

    def tuple_images(self, value: int) -> dict[bytes, SoreTuple]:
        """Map PRF image -> plaintext ciphertext-side tuple (test introspection)."""
        return {
            self._prf.eval(t.encode()): t
            for t in ciphertext_tuples(value, self.bits, self.attribute)
        }
