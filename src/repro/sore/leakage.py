"""Leakage profiling for SORE (paper Section VI.A, "Leakage Discussion").

Used SORE *alone* leaks, among a set of tokens (or among a set of
ciphertexts), the index of the first differing bit between any two values:
count the common plaintext tuples between two token lists and you recover
how long their shared prefix is.  The full Slicer protocol erases the
ciphertext-side leakage by storing slices behind a PRF-labelled,
history-independent dictionary.

This module makes the leakage *measurable*, so tests can assert that

* the leakage is exactly the first-differing-bit index, never more, and
* pairwise ``Compare`` between one token and one ciphertext reveals nothing
  beyond the boolean outcome (image multisets of non-matching pairs are
  disjoint).
"""

from __future__ import annotations

from ..common.bitstring import first_differing_bit
from .tuples import OrderCondition, SoreTuple, ciphertext_tuples, token_tuples


def token_side_leakage(x: int, y: int, oc: OrderCondition, bits: int) -> int:
    """Common-tuple count between the token lists of two queried values.

    For ``x != y`` queried with the same condition, tuples agree exactly on
    the shared prefix positions, so the count equals
    ``first_differing_bit(x, y) - 1``; for ``x == y`` all ``bits`` agree.
    """
    tx = set(token_tuples(x, oc, bits))
    ty = set(token_tuples(y, oc, bits))
    return len(tx & ty)


def ciphertext_side_leakage(x: int, y: int, bits: int) -> int:
    """Common-tuple count between the ciphertext tuple lists of two values."""
    cx = set(ciphertext_tuples(x, bits))
    cy = set(ciphertext_tuples(y, bits))
    return len(cx & cy)


def predicted_leakage(x: int, y: int, bits: int) -> int:
    """What the paper says the common-tuple count should be.

    Both token-side and ciphertext-side comparisons agree on a tuple exactly
    at prefix positions before the first differing bit.
    """
    fdb = first_differing_bit(x, y, bits)
    if fdb is None:
        return bits
    return fdb - 1


def recovered_first_differing_bit(common_count: int, bits: int, x_ne_y: bool) -> int | None:
    """Invert the leakage: what an adversary learns from a common-tuple count."""
    if not x_ne_y:
        return None
    if not 0 <= common_count < bits:
        raise ValueError("impossible common-tuple count for distinct values")
    return common_count + 1


def matched_tuple(x: int, y: int, oc: OrderCondition, bits: int) -> SoreTuple | None:
    """The single common tuple between Token(x, oc) and Encrypt(y), if any."""
    tx = set(token_tuples(x, oc, bits))
    cy = set(ciphertext_tuples(y, bits))
    common = tx & cy
    if len(common) > 1:
        raise AssertionError("Theorem 1 violated: more than one common tuple")
    return next(iter(common), None)
