"""SORE: Succinct Order-Revealing Encryption (the paper's core primitive)."""

from .leakage import (
    ciphertext_side_leakage,
    matched_tuple,
    predicted_leakage,
    recovered_first_differing_bit,
    token_side_leakage,
)
from .scheme import SoreCiphertext, SoreScheme, SoreToken
from .tuples import (
    OrderCondition,
    SoreTuple,
    ciphertext_tuples,
    cmp_bits,
    common_tuples,
    token_tuples,
)

__all__ = [
    "OrderCondition",
    "SoreCiphertext",
    "SoreScheme",
    "SoreToken",
    "SoreTuple",
    "ciphertext_side_leakage",
    "ciphertext_tuples",
    "cmp_bits",
    "common_tuples",
    "matched_tuple",
    "predicted_leakage",
    "recovered_first_differing_bit",
    "token_side_leakage",
    "token_tuples",
]
