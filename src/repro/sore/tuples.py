"""SORE tuple construction (paper Section V.B).

A *b*-bit value is sliced into *b* tuples.  For the *i*-th bit:

* query side (``SORE.Token``):      ``tk_i = v_{|i-1} || v_i || oc``
* ciphertext side (``SORE.Encrypt``): ``ct_i = v_{|i-1} || !v_i || cmp(!v_i, v_i)``

Two tuples from opposite sides are *equal* exactly when the bit index is the
first differing position and the order condition matches (Theorem 1), so
order comparison reduces to exact tuple matching — which is what lets the
SSE layer treat each tuple as an ordinary keyword.

Tuples here are plaintext structures; :mod:`repro.sore.scheme` applies the
PRF.  The optional ``attribute`` field implements the multi-attribute
extension of Section V.F (``tk_i = a || v_{|i-1} || v_i || oc``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..common.bitstring import bit_at, check_value_fits, prefix_bits
from ..common.encoding import encode_parts, encode_str
from ..common.errors import ParameterError


class OrderCondition(enum.Enum):
    """The order conditions ``oc`` a query can carry."""

    GREATER = ">"
    LESS = "<"

    @property
    def symbol(self) -> str:
        return self.value

    def holds(self, x: int, y: int) -> bool:
        """Evaluate ``x oc y`` on plaintexts (the ground truth for tests)."""
        return x > y if self is OrderCondition.GREATER else x < y

    def flipped(self) -> "OrderCondition":
        return OrderCondition.LESS if self is OrderCondition.GREATER else OrderCondition.GREATER

    @classmethod
    def from_symbol(cls, symbol: str) -> "OrderCondition":
        for member in cls:
            if member.value == symbol:
                return member
        raise ParameterError(f"unknown order condition {symbol!r}; expected '>' or '<'")


def cmp_bits(a: int, b: int) -> OrderCondition:
    """The paper's ``cmp(a, b)`` on two *differing* single bits."""
    if a == b:
        raise ParameterError("cmp is only defined on differing bits")
    return OrderCondition.GREATER if a > b else OrderCondition.LESS


@dataclass(frozen=True)
class SoreTuple:
    """One slice: ``(attribute, prefix bits, bit value, order flag)``."""

    attribute: str
    prefix: str
    bit: int
    flag: OrderCondition

    @property
    def index(self) -> int:
        """The 1-based bit index this tuple belongs to (len(prefix) + 1)."""
        return len(self.prefix) + 1

    def encode(self) -> bytes:
        """Canonical injective byte encoding — the SSE keyword for this slice."""
        return encode_parts(
            encode_str(self.attribute),
            encode_str(self.prefix),
            bytes([self.bit]),
            encode_str(self.flag.symbol),
        )


def token_tuples(
    value: int, oc: OrderCondition, bits: int, attribute: str = ""
) -> list[SoreTuple]:
    """``SORE.Token`` tuples for the query "find all a with ``value oc a``"."""
    check_value_fits(value, bits)
    return [
        SoreTuple(attribute, prefix_bits(value, i, bits), bit_at(value, i, bits), oc)
        for i in range(1, bits + 1)
    ]


def ciphertext_tuples(value: int, bits: int, attribute: str = "") -> list[SoreTuple]:
    """``SORE.Encrypt`` tuples for a stored value."""
    check_value_fits(value, bits)
    out = []
    for i in range(1, bits + 1):
        v_i = bit_at(value, i, bits)
        inv = 1 - v_i
        out.append(
            SoreTuple(attribute, prefix_bits(value, i, bits), inv, cmp_bits(inv, v_i))
        )
    return out


def common_tuples(a: list[SoreTuple], b: list[SoreTuple]) -> list[SoreTuple]:
    """Tuples present on both sides (the quantity Theorem 1 bounds by 1)."""
    return [t for t in set(a) & set(b)]
