"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``     — run the full four-party flow on a generated dataset.
* ``features`` — print the paper's Table I feature matrix.
* ``gas``      — deploy on the simulated chain and print the Table II costs.
* ``leakage``  — show what SORE leaks between two values.
* ``bench-report`` — pretty-print a saved benchmark report with a chart.
* ``report``   — render JSONL observability artifacts (settlement audit
  logs, span traces) from :mod:`repro.obs`.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.feature_matrix import render_table_i
from .analysis.plots import bar_chart, sparkline
from .analysis.reporting import render_kv_table
from .common.rng import default_rng
from .core.params import SlicerParams
from .core.query import Query
from .core.records import Database
from .system import SlicerSystem
from .workloads.generator import WorkloadGenerator, WorkloadSpec


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Slicer (ICDCS 2022) reproduction - verifiable encrypted numerical search",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the full four-party flow")
    demo.add_argument("--records", type=int, default=50, help="dataset size")
    demo.add_argument("--bits", type=int, default=8, choices=[8, 16, 24])
    demo.add_argument("--query", default="100>", help="e.g. '100>' '42=' '7<'")
    demo.add_argument("--seed", type=int, default=7)

    sub.add_parser("features", help="print Table I")

    gas = sub.add_parser("gas", help="measure smart-contract gas (Table II)")
    gas.add_argument("--modulus-bits", type=int, default=1024, choices=[512, 1024, 2048])

    leak = sub.add_parser("leakage", help="SORE leakage between two values")
    leak.add_argument("x", type=int)
    leak.add_argument("y", type=int)
    leak.add_argument("--bits", type=int, default=8)

    report = sub.add_parser("bench-report", help="show a saved benchmark report")
    report.add_argument("path", help="path to a benchmarks/reports/*.txt file")

    obs = sub.add_parser(
        "report", help="render observability artifacts (audit log, trace JSONL)"
    )
    obs.add_argument(
        "--audit", action="append", default=[], metavar="FILE",
        help="settlement audit-log JSONL file (repeatable)",
    )
    obs.add_argument(
        "--trace", action="append", default=[], metavar="FILE",
        help="span trace JSONL file (repeatable)",
    )
    obs.add_argument(
        "--metrics", action="append", default=[], metavar="FILE",
        help="counter snapshot (BENCH_*.json or raw dict) for cache stats (repeatable)",
    )
    obs.add_argument(
        "--verdict", choices=["paid", "refunded", "degraded"], default=None,
        help="filter audit rows to one verdict",
    )
    obs.add_argument("--json", action="store_true", help="emit JSON summaries instead of tables")

    sore = sub.add_parser(
        "sore-demo", help="show SORE slicing for stored values vs queries (paper Fig. 2)"
    )
    sore.add_argument("--bits", type=int, default=4)
    sore.add_argument("--values", default="5,8", help="comma-separated stored values")
    sore.add_argument("--queries", default="6>,4<", help="comma-separated, e.g. '6>,4<'")

    return parser


def _parse_query(text: str) -> Query:
    text = text.strip()
    symbol = text[-1]
    return Query.parse(int(text[:-1]), symbol)


def cmd_demo(args: argparse.Namespace) -> int:
    params = SlicerParams.testing(value_bits=args.bits, seed=args.seed)
    generator = WorkloadGenerator(default_rng(args.seed))
    database = generator.database(WorkloadSpec(args.records, args.bits))
    query = _parse_query(args.query)
    query.validate(args.bits)

    print(f"building: {args.records} records, {args.bits}-bit values ...")
    system = SlicerSystem(params, rng=default_rng(args.seed + 1))
    system.setup(database)
    print(f"  contract deployed       gas={system.deploy_receipt.gas_used:,}")

    outcome = system.search(query)
    expected = database.ids_matching(query.predicate())
    print(f"query: {query.describe()}")
    print(f"  tokens issued           {len(outcome.tokens)}")
    print(f"  matches                 {len(outcome.record_ids)} (oracle: {len(expected)})")
    print(f"  on-chain verification   gas={outcome.settle_gas:,} verified={outcome.verified}")
    print(f"  balances                {system.balances()}")
    if outcome.record_ids != expected:
        print("MISMATCH against plaintext oracle!", file=sys.stderr)
        return 1
    return 0


def cmd_features(_: argparse.Namespace) -> int:
    print(render_table_i())
    return 0


def cmd_gas(args: argparse.Namespace) -> int:
    from .crypto.accumulator import AccumulatorParams

    params = SlicerParams(
        value_bits=8,
        prime_bits=256 if args.modulus_bits >= 1024 else 64,
        accumulator=AccumulatorParams.demo(args.modulus_bits),
    )
    system = SlicerSystem(params, rng=default_rng(11))
    db = Database(8)
    for i in range(10):
        db.add(i, (i * 29) % 256)
    system.setup(db)

    add = Database(8)
    add.add(100, 42)
    insert_receipt = system.insert(add)
    outcome = system.search(Query.parse(29, "="))

    rows = [
        ("Deployment", f"{system.deploy_receipt.gas_used:,} gas"),
        ("Data insertion", f"{insert_receipt.gas_used:,} gas"),
        ("Result verification", f"{outcome.settle_gas:,} gas"),
    ]
    print(render_kv_table(f"Gas costs ({args.modulus_bits}-bit modulus)", rows))
    print()
    print(bar_chart("relative cost", [(k, float(v.split()[0].replace(',', ''))) for k, v in rows]))
    return 0


def cmd_leakage(args: argparse.Namespace) -> int:
    from .common.bitstring import first_differing_bit, to_bits
    from .sore.leakage import token_side_leakage
    from .sore.tuples import OrderCondition

    bits = args.bits
    fdb = first_differing_bit(args.x, args.y, bits)
    common = token_side_leakage(args.x, args.y, OrderCondition.GREATER, bits)
    print(f"x = {args.x} = {to_bits(args.x, bits)}")
    print(f"y = {args.y} = {to_bits(args.y, bits)}")
    if fdb is None:
        print("values are equal: all tuples agree, nothing else leaks")
    else:
        print(f"first differing bit: {fdb} (1 = MSB)")
        print(f"common tuples between their query tokens: {common}")
        print("=> an adversary holding both token lists learns exactly the")
        print(f"   shared-prefix length ({common} bits) and nothing more.")
    return 0


def cmd_bench_report(args: argparse.Namespace) -> int:
    try:
        with open(args.path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        print(f"cannot read report: {exc}", file=sys.stderr)
        return 1
    print(text)
    # Append a sparkline per numeric column block for quick shape reading.
    for line in text.splitlines():
        cells = line.split()
        try:
            values = [float(c) for c in cells[1:]]
        except ValueError:
            continue
        if len(values) >= 3:
            print(f"trend {cells[0]:>10}: {sparkline(values)}")
    return 0


def cmd_sore_demo(args: argparse.Namespace) -> int:
    """Reproduce the paper's Fig. 2: tuple tables with matches highlighted."""
    from .common.bitstring import to_bits
    from .sore.tuples import (
        OrderCondition,
        ciphertext_tuples,
        token_tuples,
    )

    bits = args.bits
    values = [int(v) for v in args.values.split(",")]
    queries = []
    for q in args.queries.split(","):
        q = q.strip()
        queries.append((int(q[:-1]), OrderCondition.from_symbol(q[-1])))

    def fmt(t) -> str:
        return f"({t.prefix or 'ε'}|{t.bit}|{t.flag.symbol})"

    for value in values:
        cts = ciphertext_tuples(value, bits)
        print(f"Encrypt({value} = {to_bits(value, bits)}): " + " ".join(fmt(t) for t in cts))
    print()
    for qv, oc in queries:
        tks = token_tuples(qv, oc, bits)
        print(f"Token({qv} = {to_bits(qv, bits)}, {oc.symbol}): " + " ".join(fmt(t) for t in tks))
        for value in values:
            cts = set(ciphertext_tuples(value, bits))
            common = [t for t in tks if t in cts]
            verdict = f"MATCH at bit {common[0].index}" if common else "no match"
            truth = oc.holds(qv, value)
            print(f"  vs {value}: {verdict}  (plaintext: {qv} {oc.symbol} {value} is {truth})")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .obs.report import run_report

    try:
        text = run_report(
            args.audit,
            args.trace,
            metrics_paths=args.metrics,
            verdict=args.verdict,
            as_json=args.json,
        )
    except (OSError, ValueError) as exc:
        print(f"cannot render report: {exc}", file=sys.stderr)
        return 1
    print(text, end="")
    return 0


_COMMANDS = {
    "demo": cmd_demo,
    "features": cmd_features,
    "gas": cmd_gas,
    "leakage": cmd_leakage,
    "bench-report": cmd_bench_report,
    "report": cmd_report,
    "sore-demo": cmd_sore_demo,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
