"""Deterministic fault model: what can go wrong on a party boundary.

The Slicer threat model (Section IV.B) lets the *cloud* misbehave; the
network between the four parties is usually assumed reliable.  Production
deployments get neither — messages drop, duplicate, reorder, rot in flight,
and clouds crash mid-update — and the fairness claims only matter if they
survive that.  This module defines the fault vocabulary and a replayable
schedule generator:

* :class:`FaultKind` — the six injectable faults,
* :class:`FaultProfile` — per-fault weights (a named chaos "climate"),
* :class:`FaultPlan` — draws a fault decision per delivery from its own
  :class:`~repro.common.rng.DeterministicRNG`; the same seed replays the
  identical schedule, which is what makes chaos runs debuggable and lets CI
  gate on exact counter equality.

Fairness under faults needs liveness: a plan that drops *every* delivery
proves nothing.  ``force_clean_after`` bounds consecutive faults per
channel, so any retry policy with enough attempts is *guaranteed* to land
the message — honest outcomes can be asserted, not hoped for.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..common.errors import ParameterError
from ..common.rng import DeterministicRNG

#: Denominator for the per-mille fault weights in :class:`FaultProfile`.
WEIGHT_SCALE = 1000


class FaultKind(enum.Enum):
    """One injectable delivery fault."""

    DROP = "drop"  # message lost in flight; sender times out
    STALL = "stall"  # delivered too late; sender already timed out
    CORRUPT = "corrupt"  # bit flipped in the framed wire bytes
    REORDER = "reorder"  # held back, delivered after a newer message
    CRASH = "crash"  # receiving endpoint dies before processing
    DUPLICATE = "duplicate"  # delivered twice (at-least-once delivery)


#: Request-leg faults, drawn as at most one per delivery, in this order.
REQUEST_FAULTS = (
    FaultKind.DROP,
    FaultKind.STALL,
    FaultKind.CORRUPT,
    FaultKind.REORDER,
    FaultKind.CRASH,
)

#: Reply-leg faults: the handler already ran, only its answer is at risk.
REPLY_FAULTS = (FaultKind.DROP, FaultKind.STALL)


@dataclass(frozen=True)
class FaultProfile:
    """Per-fault weights (per mille) plus the liveness bound.

    ``force_clean_after`` is the maximum run of consecutive faulty draws on
    one channel leg before a clean delivery is forced.  With the bound at
    ``k``, a retry policy with more than ``2 * (k + 1)`` attempts (request
    and reply legs alternate worst-case) always gets one message through.
    """

    name: str
    drop: int = 0
    stall: int = 0
    corrupt: int = 0
    reorder: int = 0
    crash: int = 0
    duplicate: int = 0
    reply_drop: int = 0
    reply_stall: int = 0
    force_clean_after: int = 2

    def __post_init__(self) -> None:
        total = self.drop + self.stall + self.corrupt + self.reorder + self.crash
        if total > WEIGHT_SCALE:
            raise ParameterError("request fault weights exceed the scale")
        if self.reply_drop + self.reply_stall > WEIGHT_SCALE:
            raise ParameterError("reply fault weights exceed the scale")
        if self.duplicate > WEIGHT_SCALE:
            raise ParameterError("duplicate weight exceeds the scale")
        if self.force_clean_after < 1:
            raise ParameterError("force_clean_after must be >= 1")

    def request_weights(self) -> list[tuple[FaultKind, int]]:
        return [
            (FaultKind.DROP, self.drop),
            (FaultKind.STALL, self.stall),
            (FaultKind.CORRUPT, self.corrupt),
            (FaultKind.REORDER, self.reorder),
            (FaultKind.CRASH, self.crash),
        ]

    def reply_weights(self) -> list[tuple[FaultKind, int]]:
        return [
            (FaultKind.DROP, self.reply_drop),
            (FaultKind.STALL, self.reply_stall),
        ]

    # ------------------------------------------------------------ profiles

    @classmethod
    def clean(cls) -> "FaultProfile":
        """The reliable network every existing test implicitly assumed."""
        return cls(name="clean")

    @classmethod
    def lossy(cls) -> "FaultProfile":
        """A flaky WAN: drops, stalls, bit rot, duplicates, reordering."""
        return cls(
            name="lossy",
            drop=80,
            stall=50,
            corrupt=50,
            reorder=40,
            duplicate=100,
            reply_drop=50,
            reply_stall=30,
        )

    @classmethod
    def crash_restart(cls) -> "FaultProfile":
        """A cloud that keeps dying: crash-dominated with some packet loss."""
        return cls(
            name="crash_restart",
            drop=50,
            crash=120,
            duplicate=50,
            reply_drop=40,
        )


#: The named profiles the conformance matrix and the CLI knobs accept.
PROFILES: dict[str, FaultProfile] = {
    "clean": FaultProfile.clean(),
    "lossy": FaultProfile.lossy(),
    "crash_restart": FaultProfile.crash_restart(),
}


def profile_named(name: str) -> FaultProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ParameterError(
            f"unknown fault profile {name!r} (have: {', '.join(sorted(PROFILES))})"
        ) from None


class ChainFaultKind(enum.Enum):
    """One injectable chain-level fault (block production, not transport)."""

    REORG = "reorg"  # sealed block(s) orphaned; their txs re-execute
    DELAY = "delay"  # a staged settlement held out of the next N blocks


@dataclass(frozen=True)
class ChainFaultProfile:
    """Per-mille weights for chain-level faults plus their severity bounds.

    ``reorg`` is drawn once per sealed block; on a hit the chain rewinds
    ``1..reorg_depth_max`` blocks (uniform) and deterministically re-executes
    the orphaned transactions.  ``delay`` is drawn once per staged
    settlement; on a hit the transaction is ineligible for the next
    ``1..delay_blocks_max`` blocks, so settlement lands late but still
    lands.  ``force_clean_after`` bounds consecutive faulty draws per leg,
    which is what makes every settle round terminate.
    """

    name: str
    reorg: int = 0
    reorg_depth_max: int = 2
    delay: int = 0
    delay_blocks_max: int = 3
    force_clean_after: int = 2

    def __post_init__(self) -> None:
        if not 0 <= self.reorg <= WEIGHT_SCALE:
            raise ParameterError("reorg weight exceeds the scale")
        if not 0 <= self.delay <= WEIGHT_SCALE:
            raise ParameterError("delay weight exceeds the scale")
        if self.reorg_depth_max < 1 or self.delay_blocks_max < 1:
            raise ParameterError("chain fault severity bounds must be >= 1")
        if self.force_clean_after < 1:
            raise ParameterError("force_clean_after must be >= 1")

    # ------------------------------------------------------------ profiles

    @classmethod
    def stable(cls) -> "ChainFaultProfile":
        """The single-branch chain every existing test implicitly assumed."""
        return cls(name="stable")

    @classmethod
    def reorgy(cls) -> "ChainFaultProfile":
        """A contentious chain: frequent shallow reorgs, some late inclusion."""
        return cls(name="reorgy", reorg=250, reorg_depth_max=2, delay=150)

    @classmethod
    def congested(cls) -> "ChainFaultProfile":
        """A congested chain: settlement regularly priced out for blocks."""
        return cls(name="congested", reorg=80, delay=400, delay_blocks_max=3)


#: Named chain-fault profiles the conformance matrix and CLI knobs accept.
CHAIN_PROFILES: dict[str, ChainFaultProfile] = {
    "stable": ChainFaultProfile.stable(),
    "reorgy": ChainFaultProfile.reorgy(),
    "congested": ChainFaultProfile.congested(),
}


def chain_profile_named(name: str) -> ChainFaultProfile:
    try:
        return CHAIN_PROFILES[name]
    except KeyError:
        raise ParameterError(
            f"unknown chain fault profile {name!r} "
            f"(have: {', '.join(sorted(CHAIN_PROFILES))})"
        ) from None


class ChainFaultPlan:
    """A replayable chain-fault schedule, independent of the transport plan.

    Owns its own :class:`~repro.common.rng.DeterministicRNG` so enabling
    chain faults never perturbs a :class:`FaultPlan`'s draw sequence — the
    transport schedule for a given (profile, seed) stays bit-identical with
    and without reorgs, which the block-settlement property suite asserts.
    """

    def __init__(self, profile: ChainFaultProfile, seed: int) -> None:
        self.profile = profile
        self.seed = seed
        self.rng = DeterministicRNG(seed)
        self._consecutive: dict[str, int] = {}
        self.history: list[tuple[int, str, str]] = []
        self._step = 0

    def _record(self, leg: str, outcome: str) -> None:
        self.history.append((self._step, leg, outcome))
        self._step += 1

    def _draw(self, leg: str, weight: int, severity_max: int) -> int:
        """Severity draw (0 = clean); ``force_clean_after`` bounds streaks."""
        if self._consecutive.get(leg, 0) >= self.profile.force_clean_after:
            self._consecutive[leg] = 0
            self._record(leg, "forced-clean")
            return 0
        if weight and self.rng.randint_below(WEIGHT_SCALE) < weight:
            severity = 1 + self.rng.randint_below(severity_max)
            self._consecutive[leg] = self._consecutive.get(leg, 0) + 1
            self._record(leg, f"{leg}:{severity}")
            return severity
        self._consecutive[leg] = 0
        self._record(leg, "clean")
        return 0

    def draw_reorg(self) -> int:
        """Reorg depth hitting the block just sealed (0 = none)."""
        return self._draw("reorg", self.profile.reorg, self.profile.reorg_depth_max)

    def draw_delay(self) -> int:
        """Blocks a staged settlement is held out of inclusion (0 = none)."""
        return self._draw("delay", self.profile.delay, self.profile.delay_blocks_max)


class FaultPlan:
    """A replayable fault schedule: (profile, seed) fixes every decision.

    Draw order is defined by the delivery sequence — each delivery consumes
    exactly the draws its faults require, so two runs making the same
    deliveries see the same schedule.  ``history`` records every decision
    (step, channel-leg, outcome) for schedule-identity assertions.
    """

    def __init__(self, profile: FaultProfile, seed: int) -> None:
        self.profile = profile
        self.seed = seed
        self.rng = DeterministicRNG(seed)
        self._consecutive: dict[str, int] = {}
        self.history: list[tuple[int, str, str]] = []
        self._step = 0

    # ------------------------------------------------------------- drawing

    def _record(self, leg: str, outcome: str) -> None:
        self.history.append((self._step, leg, outcome))
        self._step += 1

    def _draw_weighted(
        self, leg: str, weights: list[tuple[FaultKind, int]]
    ) -> FaultKind | None:
        """At most one fault per leg; ``force_clean_after`` bounds streaks."""
        if self._consecutive.get(leg, 0) >= self.profile.force_clean_after:
            self._consecutive[leg] = 0
            self._record(leg, "forced-clean")
            return None
        roll = self.rng.randint_below(WEIGHT_SCALE)
        threshold = 0
        for kind, weight in weights:
            threshold += weight
            if roll < threshold:
                self._consecutive[leg] = self._consecutive.get(leg, 0) + 1
                self._record(leg, kind.value)
                return kind
        self._consecutive[leg] = 0
        self._record(leg, "clean")
        return None

    def draw_request(self, channel: str) -> FaultKind | None:
        """The fault (if any) hitting the request leg of one delivery."""
        return self._draw_weighted(channel, self.profile.request_weights())

    def draw_reply(self, channel: str) -> FaultKind | None:
        """The fault (if any) hitting the reply leg, after the handler ran."""
        return self._draw_weighted(f"{channel}:reply", self.profile.reply_weights())

    def draw_duplicate(self, channel: str) -> bool:
        """Whether a successfully delivered message also arrives a second time."""
        if not self.profile.duplicate:
            return False
        dup = self.rng.randint_below(WEIGHT_SCALE) < self.profile.duplicate
        if dup:
            self._record(channel, "duplicate")
        return dup

    def corruption_bit(self, frame_len: int) -> int:
        """Which bit of a ``frame_len``-byte frame the corruption flips."""
        return self.rng.randint_below(frame_len * 8)
