"""Bounded retry with deterministic exponential backoff.

Transport faults are *expected* under chaos, so every boundary call is
wrapped in a :class:`RetryPolicy`: transport errors are retried up to
``max_attempts`` with exponentially growing (capped) backoff on the
transport's **virtual** clock — nothing sleeps, runs stay deterministic.
There is deliberately no jitter: jitter exists to decorrelate real fleets,
and here it would only break seed-replayability.

Protocol verdicts are never retried — a settled query stays settled; only
delivery failures (and explicitly transient chain reverts, e.g. a stale
ADS digest during a concurrent insert) are.  When the budget runs out the
policy raises :class:`~repro.common.errors.RetryExhausted`, which
:class:`~repro.system.SlicerSystem` degrades into a ``SearchOutcome`` error
state instead of an unhandled exception.

Counters: ``retry.attempts`` (every attempt), ``retry.recovered`` (success
after ≥1 failure), ``retry.gave_up`` (budget exhausted).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common import perfstats
from ..common.errors import ParameterError, RetryExhausted, TransportError
from ..obs import trace


def last_fault_step(transport) -> int | None:
    """Index into the transport's FaultPlan history of the latest injection.

    Scans backwards past bookkeeping outcomes (``clean``/``forced-clean``)
    to the decision that actually faulted a delivery — the attribution a
    degraded outcome records (``RetryExhausted.fault_step``).
    """
    plan = getattr(transport, "plan", None)
    if plan is None:
        return None
    for step, _leg, outcome in reversed(plan.history):
        if outcome not in ("clean", "forced-clean"):
            return step
    return None


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    The defaults tolerate the worst streak the bundled fault profiles can
    produce: with ``force_clean_after = 2`` the request and reply legs can
    fail at most ``2 + 1 + 2 = 5`` consecutive deliveries between forced
    clean draws, so eight attempts always suffice for liveness.
    """

    max_attempts: int = 8
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ParameterError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0 or self.multiplier < 1:
            raise ParameterError("backoff parameters must be non-negative (multiplier >= 1)")

    def backoff_s(self, failures: int) -> float:
        """Virtual delay after the ``failures``-th consecutive failure (1-based)."""
        return min(self.base_delay_s * self.multiplier ** (failures - 1), self.max_delay_s)

    def schedule(self) -> list[float]:
        """The full (deterministic) backoff sequence, for docs and tests."""
        return [self.backoff_s(i) for i in range(1, self.max_attempts)]

    def run(self, op, *, transport=None, label: str = "operation"):
        """Call ``op(attempt)`` until it returns, retrying transport errors.

        ``op`` receives the 1-based attempt number.  Between attempts the
        policy advances the transport's virtual clock by the backoff delay.
        Non-transport exceptions propagate immediately — they are bugs or
        final protocol verdicts, not delivery noise.
        """
        last: TransportError | None = None
        for attempt in range(1, self.max_attempts + 1):
            perfstats.incr("retry.attempts")
            try:
                result = op(attempt)
            except TransportError as exc:
                last = exc
                backoff = self.backoff_s(attempt)
                trace.event(
                    "retry",
                    label=label,
                    attempt=attempt,
                    error=type(exc).__name__,
                    backoff_s=backoff,
                )
                if transport is not None and attempt < self.max_attempts:
                    transport.sleep(backoff)
                continue
            if attempt > 1:
                perfstats.incr("retry.recovered")
                trace.event("retry_recovered", label=label, attempts=attempt)
            return result
        perfstats.incr("retry.gave_up")
        fault_step = last_fault_step(transport)
        trace.event(
            "retry_exhausted",
            label=label,
            attempts=self.max_attempts,
            error=type(last).__name__ if last else None,
            fault_step=fault_step,
        )
        raise RetryExhausted(
            f"{label} failed after {self.max_attempts} attempts: {last}",
            label=label,
            attempts=self.max_attempts,
            last_error=last,
            fault_step=fault_step,
        ) from last
