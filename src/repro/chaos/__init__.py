"""Chaos engineering for the four-party protocol: deterministic fault
injection on the ``user → contract``, ``contract → cloud``,
``cloud → contract`` and ``owner → cloud/chain`` boundaries, plus the
retry/timeout/backoff machinery that survives it.

Opt-in only: construct a :class:`ChaosTransport` and hand it to
:class:`~repro.system.SlicerSystem`, or export ``REPRO_CHAOS=1``.  With no
transport (the default) nothing here runs and the direct in-process path is
byte-identical to before this package existed.
"""

from .faults import (
    CHAIN_PROFILES,
    PROFILES,
    ChainFaultKind,
    ChainFaultPlan,
    ChainFaultProfile,
    FaultKind,
    FaultPlan,
    FaultProfile,
    chain_profile_named,
    profile_named,
)
from .retry import RetryPolicy
from .transport import (
    CLOUD_TO_CONTRACT,
    CONTRACT_TO_CLOUD,
    OWNER_TO_CLOUD,
    OWNER_TO_CONTRACT,
    USER_TO_CONTRACT,
    ChaosTransport,
    chaos_enabled,
    shard_channel,
)

__all__ = [
    "CHAIN_PROFILES",
    "PROFILES",
    "ChainFaultKind",
    "ChainFaultPlan",
    "ChainFaultProfile",
    "FaultKind",
    "FaultPlan",
    "FaultProfile",
    "chain_profile_named",
    "profile_named",
    "RetryPolicy",
    "ChaosTransport",
    "chaos_enabled",
    "USER_TO_CONTRACT",
    "CONTRACT_TO_CLOUD",
    "CLOUD_TO_CONTRACT",
    "OWNER_TO_CLOUD",
    "OWNER_TO_CONTRACT",
    "shard_channel",
]
