"""The chaos transport: fault-injected delivery on the party boundaries.

:class:`ChaosTransport` carries one serialized message (real wire bytes —
callers serialize through :mod:`repro.core.wire` / :mod:`repro.storage`
codecs) from a sender to a receiving ``handler`` and returns the handler's
reply.  Before, during and after delivery it consults a
:class:`~repro.chaos.faults.FaultPlan` and injects:

* **drop / stall** — the request never arrives (or arrives too late):
  the virtual clock advances past the delivery window and
  :class:`~repro.common.errors.TransportTimeout` is raised,
* **corrupt** — a bit of the framed wire bytes flips; the frame's content
  digest catches it at the receiver (the TCP/TLS integrity layer every
  real deployment has) and the message is discarded —
  :class:`~repro.common.errors.TransportCorruption`,
* **reorder** — the message is held and delivered *after* the next message
  on the same channel (stale at-least-once delivery),
* **crash** — the receiving endpoint dies before processing; the caller's
  ``on_crash`` hook restarts it (the cloud reloads its
  :mod:`~repro.storage.state_io` snapshot) and the request is lost,
* **duplicate** — the handler sees the message twice; receiver-side
  idempotency (``idempotency_key``) deduplicates state-changing calls,
* **reply drop / stall** — the handler ran but its answer is lost, which
  is exactly the case idempotent re-submission exists for.

Every injected fault increments a ``chaos.injected.<kind>`` perfstats
counter, so CI can gate on *behaviour* (how many faults were survived)
instead of wall-clock.  Time is virtual (``clock`` advances, nothing
sleeps): chaos runs are as fast as clean ones and fully deterministic.
"""

from __future__ import annotations

import hashlib
import os

from ..common import perfstats
from ..common.encoding import decode_parts, encode_parts
from ..common.errors import ParameterError, TransportCorruption, TransportTimeout
from ..obs import trace
from .faults import FaultKind, FaultPlan, FaultProfile, profile_named

# Channel names for the Fig. 1 party boundaries.
USER_TO_CONTRACT = "user->contract"
CONTRACT_TO_CLOUD = "contract->cloud"
CLOUD_TO_CONTRACT = "cloud->contract"
OWNER_TO_CLOUD = "owner->cloud"
OWNER_TO_CONTRACT = "owner->contract"

_DEFAULT_SEED = 0xC4A05  # "chaos"


def shard_channel(base: str, shard_id: int) -> str:
    """Per-shard fault leg: ``contract->cloud#shard2`` etc.

    :class:`~repro.chaos.faults.FaultPlan` keys its schedules by channel
    name, so giving every shard of the serving tier its own channel makes
    shard legs fail *independently* — one shard's drop/stall/crash schedule
    never consumes another shard's (or the unsharded channel's) fault draws.
    """
    return f"{base}#shard{shard_id}"


def chaos_enabled() -> bool:
    """``REPRO_CHAOS=1`` opts benchmarks/systems into a default chaos transport.

    The default (``0``/unset) leaves every existing code path byte-identical:
    no transport is constructed, no RNG is consumed, no counter is touched.
    """
    return os.environ.get("REPRO_CHAOS", "0").lower() not in ("", "0", "false", "no")


def frame(payload: bytes) -> bytes:
    """Wrap wire bytes with a content digest (the transport integrity layer)."""
    return encode_parts(hashlib.sha256(payload).digest(), payload)


def unframe(blob: bytes) -> bytes:
    """Validate and strip the frame; corrupted frames never reach a codec."""
    try:
        digest, payload = decode_parts(blob)
    except (ParameterError, ValueError) as exc:
        raise TransportCorruption(f"unparseable frame: {exc}") from exc
    if hashlib.sha256(payload).digest() != digest:
        raise TransportCorruption("frame failed its content digest")
    return payload


class ChaosTransport:
    """Deterministic fault-injecting message channel between parties."""

    def __init__(
        self,
        plan: FaultPlan,
        *,
        timeout_s: float = 1.0,
        latency_s: float = 0.001,
    ) -> None:
        self.plan = plan
        self.timeout_s = timeout_s
        self.latency_s = latency_s
        #: Virtual seconds elapsed; advanced by deliveries, timeouts and
        #: retry backoff.  Never wall-clock — chaos runs don't sleep.
        self.clock = 0.0
        #: Receiver-side idempotency cache: key -> cached handler reply.
        self._idempotent: dict[object, object] = {}
        #: Reordered messages awaiting stale delivery, per channel.
        self._held: dict[str, list[tuple[bytes, object, object, object]]] = {}

    # ------------------------------------------------------------ builders

    @classmethod
    def for_profile(cls, name: str, seed: int = _DEFAULT_SEED) -> "ChaosTransport":
        return cls(FaultPlan(profile_named(name), seed))

    @classmethod
    def from_env(cls) -> "ChaosTransport":
        """Profile/seed from ``REPRO_CHAOS_PROFILE`` / ``REPRO_CHAOS_SEED``."""
        name = os.environ.get("REPRO_CHAOS_PROFILE", "lossy")
        try:
            seed = int(os.environ.get("REPRO_CHAOS_SEED", str(_DEFAULT_SEED)), 0)
        except ValueError as exc:
            raise ParameterError(f"REPRO_CHAOS_SEED must be an integer: {exc}") from exc
        return cls.for_profile(name, seed)

    # ----------------------------------------------------------- the clock

    def sleep(self, seconds: float) -> None:
        """Advance virtual time (retry backoff 'waits' here)."""
        self.clock += seconds

    # ------------------------------------------------------------ delivery

    def deliver(
        self,
        channel: str,
        payload: bytes,
        handler,
        *,
        idempotency_key: object | None = None,
        cache_if=None,
        on_crash=None,
    ):
        """Carry ``payload`` to ``handler`` through the fault plan.

        ``handler`` receives the (verified) wire bytes and returns the reply
        object.  ``idempotency_key`` enables receiver-side dedup: a repeated
        delivery of the same logical operation returns the cached reply
        instead of re-executing — this is what makes re-submission after a
        lost reply safe.  ``cache_if(reply)`` limits which replies are
        cached (e.g. only non-reverted receipts, so a transiently reverting
        call re-executes).  ``on_crash`` restarts the receiving endpoint
        when a crash fault fires.

        Raises :class:`TransportTimeout` / :class:`TransportCorruption` for
        the caller's retry policy to absorb.
        """
        framed = frame(payload)
        self._deliver_stale(channel)
        fault = self.plan.draw_request(channel)
        if fault is not None:
            self._trace_fault(channel, fault, leg="request")
        if fault is FaultKind.DROP:
            self._timeout("chaos.injected.drop", f"{channel}: request dropped")
        if fault is FaultKind.STALL:
            self._timeout("chaos.injected.stall", f"{channel}: request stalled")
        if fault is FaultKind.CRASH:
            perfstats.incr("chaos.injected.crash")
            if on_crash is not None:
                on_crash()
            self.clock += self.timeout_s
            raise TransportTimeout(f"{channel}: endpoint crashed mid-delivery")
        if fault is FaultKind.CORRUPT:
            perfstats.incr("chaos.injected.corrupt")
            framed = self._flip_bit(framed)
            self.clock += self.timeout_s
            try:
                unframe(framed)
            except TransportCorruption:
                perfstats.incr("chaos.detected.corrupt")
                raise
            # A flip inside the digest-sized prefix could in principle keep
            # the frame parseable yet mismatched — unframe always raises on
            # mismatch, so reaching here means the flip landed in framing
            # bytes that still failed; either way the raise above covers it.
            raise TransportCorruption(f"{channel}: frame corrupted in flight")
        if fault is FaultKind.REORDER:
            perfstats.incr("chaos.injected.reorder")
            self._held.setdefault(channel, []).append(
                (framed, handler, idempotency_key, cache_if)
            )
            self.clock += self.timeout_s
            raise TransportTimeout(f"{channel}: request overtaken (reordered)")

        self.clock += self.latency_s
        result = self._handle(framed, handler, idempotency_key, cache_if)
        if self.plan.draw_duplicate(channel):
            perfstats.incr("chaos.injected.duplicate")
            self._trace_fault(channel, FaultKind.DUPLICATE, leg="request")
            self._handle(framed, handler, idempotency_key, cache_if)
        reply_fault = self.plan.draw_reply(channel)
        if reply_fault is not None:
            self._trace_fault(channel, reply_fault, leg="reply")
        if reply_fault is FaultKind.DROP:
            self._timeout("chaos.injected.reply_drop", f"{channel}: reply dropped")
        if reply_fault is FaultKind.STALL:
            self._timeout("chaos.injected.reply_stall", f"{channel}: reply stalled")
        return result

    # ------------------------------------------------------------ internals

    def _trace_fault(self, channel: str, kind: FaultKind, *, leg: str) -> None:
        """Attach one injection to the current span, with its plan step.

        The step index points into ``plan.history``, so a trace event and
        the replayable schedule cross-reference each other exactly —
        "which decision broke this attempt" is answerable offline.
        """
        history = self.plan.history
        trace.event(
            "fault",
            channel=channel,
            leg=leg,
            kind=kind.value,
            step=history[-1][0] if history else None,
        )

    def _timeout(self, counter: str, message: str) -> None:
        perfstats.incr(counter)
        self.clock += self.timeout_s
        raise TransportTimeout(message)

    def _flip_bit(self, framed: bytes) -> bytes:
        position = self.plan.corruption_bit(len(framed))
        blob = bytearray(framed)
        blob[position // 8] ^= 1 << (position % 8)
        return bytes(blob)

    def _handle(self, framed: bytes, handler, idempotency_key, cache_if):
        payload = unframe(framed)
        if idempotency_key is not None and idempotency_key in self._idempotent:
            perfstats.incr("chaos.deduped")
            return self._idempotent[idempotency_key]
        result = handler(payload)
        if idempotency_key is not None and (cache_if is None or cache_if(result)):
            self._idempotent[idempotency_key] = result
        return result

    def _deliver_stale(self, channel: str) -> None:
        """Late delivery of reordered messages, before the newer one lands."""
        for framed, handler, key, cache_if in self._held.pop(channel, []):
            perfstats.incr("chaos.delivered.stale")
            try:
                self._handle(framed, handler, key, cache_if)
            except TransportCorruption:
                pass  # the held frame rotted; at-least-once still holds via retry
