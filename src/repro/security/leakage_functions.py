"""The four leakage functions of Theorem 2 (paper Section VI.B), executable.

Security of an SSE scheme is stated relative to what the adversary is
*allowed* to learn.  The paper defines:

* ``L_build(DB)``  = entry sizes ⟨|l|, |d|⟩, entry count p, prime bit length
  |x| and prime count q — i.e. only **shapes**, nothing about the content.
* ``L_search(v, mc)`` = the search tokens, the matched index entries per
  epoch, the result multiset hash, the prime and the VO — i.e. the *access
  pattern* of that one query.
* ``L_insert(DB+)`` = the shapes of the newly added entries/primes.
* ``L_repeat(Q)``  = which historical tokens repeat (a symmetric bit matrix).

These are implemented as plain functions of the *plaintext* inputs (plus
protocol parameters), because that is the whole point: everything in the
adversary's view must be computable from these quantities alone.  The
:mod:`repro.security.games` module checks that claim empirically by having a
simulator rebuild an indistinguishable transcript from the leakage only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.keywords import (
    equality_keyword,
    keywords_for_record,
    order_keywords_for_query,
)
from ..core.params import SlicerParams
from ..core.query import Query
from ..core.records import AttributedRecord, Database, Record
from ..crypto.symmetric import NONCE_LEN


@dataclass(frozen=True)
class BuildLeakage:
    """``L_build(DB) = (⟨|l|, |d|⟩_p, |x|_q)``."""

    label_len: int
    payload_len: int
    entry_count: int  # p
    prime_bits: int
    prime_count: int  # q


def _record_keywords(record, bits):
    if isinstance(record, AttributedRecord):
        out = []
        for attribute, value in record.attributes:
            out.extend(keywords_for_record(value, bits, attribute))
        return out
    return keywords_for_record(record.value, bits)


def build_leakage(database: Database, params: SlicerParams) -> BuildLeakage:
    """Compute ``L_build`` from the plaintext database and public parameters."""
    keywords: set[bytes] = set()
    entries = 0
    for record in database:
        kws = _record_keywords(record, params.value_bits)
        entries += len(kws)
        keywords.update(kws)
    return BuildLeakage(
        label_len=params.label_len,
        payload_len=NONCE_LEN + params.record_id_len,
        entry_count=entries,
        prime_bits=params.prime_bits,
        prime_count=len(keywords),
    )


@dataclass(frozen=True)
class TokenLeakage:
    """Per-token slice of ``L_search``: epoch + per-epoch match counts.

    ``identity`` is an opaque pseudonym of the underlying keyword.  It
    encodes the *repeat pattern* (the information ``L_repeat`` tracks) —
    whether two tokens refer to the same keyword — without revealing the
    keyword itself.
    """

    identity: bytes
    epoch: int  # j
    matches_per_epoch: tuple[int, ...]  # c_i for i = j .. 0

    @property
    def total_matches(self) -> int:
        return sum(self.matches_per_epoch)


@dataclass(frozen=True)
class SearchLeakage:
    """``L_search(v, mc)``: the access pattern of one query.

    ``token_count`` is n (how many keywords of the query are live) and
    ``tokens`` carries, per live keyword, its epoch and per-epoch result
    counts — exactly the ⟨l, d, er⟩ shape information of the paper's
    definition (the actual byte strings are PRF outputs the simulator draws
    at random).
    """

    tokens: tuple[TokenLeakage, ...]

    @property
    def token_count(self) -> int:
        return len(self.tokens)


def search_leakage(
    query: Query,
    history: "OwnerHistory",
    params: SlicerParams,
) -> SearchLeakage:
    """Compute ``L_search`` from the plaintext query + insertion history."""
    bits = params.value_bits
    if query.condition.is_order:
        keywords = order_keywords_for_query(
            query.value, query.condition.order_condition(), bits, query.attribute
        )
    else:
        keywords = [equality_keyword(query.value, bits, query.attribute)]
    import hashlib

    tokens = []
    for keyword in keywords:
        epochs = history.epochs_of(keyword)
        if epochs is None:
            continue
        pseudonym = hashlib.sha256(b"kw-pseudonym:" + keyword).digest()[:8]
        tokens.append(
            TokenLeakage(pseudonym, len(epochs) - 1, tuple(reversed(epochs)))
        )
    return SearchLeakage(tuple(tokens))


@dataclass(frozen=True)
class InsertLeakage:
    """``L_insert(DB+) = (⟨|l+|, |d+|⟩_{p+}, |x+|_{q+})``."""

    label_len: int
    payload_len: int
    entry_count: int  # p+
    prime_bits: int
    prime_count: int  # q+


def insert_leakage(additions: Database, params: SlicerParams) -> InsertLeakage:
    keywords: set[bytes] = set()
    entries = 0
    for record in additions:
        kws = _record_keywords(record, params.value_bits)
        entries += len(kws)
        keywords.update(kws)
    return InsertLeakage(
        label_len=params.label_len,
        payload_len=NONCE_LEN + params.record_id_len,
        entry_count=entries,
        prime_bits=params.prime_bits,
        prime_count=len(keywords),
    )


@dataclass
class RepeatLeakage:
    """``L_repeat(Q)``: the symmetric repeat matrix over issued tokens.

    Token identity is keyword identity *at the same epoch*: re-querying a
    keyword whose trapdoor has not advanced re-issues the identical token.
    """

    matrix: list[list[int]] = field(default_factory=list)
    _seen: list[tuple[bytes, int]] = field(default_factory=list)

    def observe(self, keyword: bytes, epoch: int) -> int | None:
        """Record one issued token; returns the index it repeats, if any."""
        identity = (keyword, epoch)
        repeat_of = None
        for i, prior in enumerate(self._seen):
            if prior == identity:
                repeat_of = i
                break
        self._seen.append(identity)
        n = len(self._seen)
        for row in self.matrix:
            row.append(0)
        self.matrix.append([0] * n)
        if repeat_of is not None:
            self.matrix[-1][repeat_of] = 1
            self.matrix[repeat_of][-1] = 1
        return repeat_of

    @property
    def count(self) -> int:
        return len(self._seen)


class OwnerHistory:
    """Plaintext mirror of the owner's epoch structure.

    The leakage functions need to know, per keyword, how many entries landed
    in each epoch.  That is a function of the *sequence of plaintext
    operations* (build + inserts), not of any secret, so the history tracks
    it outside the protocol.
    """

    def __init__(self, params: SlicerParams) -> None:
        self.params = params
        self._epochs: dict[bytes, list[int]] = {}

    def record_batch(self, records: list[Record | AttributedRecord]) -> None:
        """Register one Build/Insert batch (each batch = one epoch advance)."""
        per_keyword: dict[bytes, int] = {}
        for record in records:
            for kw in _record_keywords(record, self.params.value_bits):
                per_keyword[kw] = per_keyword.get(kw, 0) + 1
        for keyword, count in per_keyword.items():
            self._epochs.setdefault(keyword, []).append(count)

    def epochs_of(self, keyword: bytes) -> list[int] | None:
        """Entry counts per epoch (oldest first), or None if never indexed."""
        return self._epochs.get(keyword)
