"""The simulator ``S`` from the proof of Theorem 2.

Given ONLY the leakage functions' outputs — never the database, queries, or
keys — ``S`` produces a transcript with the same structure as a real
protocol execution: an index of ``p`` random (label, payload) pairs, ``q``
random primes, random search tokens with consistent epoch walks, and
repeated tokens replayed verbatim per ``L_repeat``.

In the paper this is a proof device inside a hybrid argument (random
oracles are *programmed* so the simulated view is consistent).  Here it is
executable so the test suite can check, empirically, the property the proof
asserts: nothing in the real adversary view is predictable beyond what the
leakage functions describe (`repro.security.games`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.rng import DeterministicRNG, default_rng
from ..core.params import SlicerParams
from ..crypto.primes import next_prime
from .leakage_functions import (
    BuildLeakage,
    InsertLeakage,
    RepeatLeakage,
    SearchLeakage,
)


@dataclass(frozen=True)
class TranscriptToken:
    """One simulated-or-real search token plus its result entries."""

    trapdoor: bytes
    epoch: int
    g1: bytes
    g2: bytes
    entries: tuple[bytes, ...]
    result_hash: bytes
    prime: int
    witness: int


@dataclass
class Transcript:
    """Everything the adversarial cloud/observer sees across the game.

    Tokens are grouped per query because Algorithm 3 *shuffles* the token
    list before sending it — the order within one query carries no
    information, so Real/Ideal comparison happens on per-query multisets.
    """

    index_entries: list[tuple[bytes, bytes]] = field(default_factory=list)
    primes: list[int] = field(default_factory=list)
    accumulation: int = 0
    token_groups: list[list[TranscriptToken]] = field(default_factory=list)

    @property
    def tokens(self) -> list[TranscriptToken]:
        return [token for group in self.token_groups for token in group]

    @property
    def labels(self) -> list[bytes]:
        return [label for label, _ in self.index_entries]

    @property
    def payloads(self) -> list[bytes]:
        return [payload for _, payload in self.index_entries]


class Simulator:
    """``S``: builds a fake-but-structurally-identical transcript from leakage."""

    def __init__(self, params: SlicerParams, rng: DeterministicRNG | None = None) -> None:
        self.params = params.public()
        self.rng = rng or default_rng()
        self.transcript = Transcript()
        self._repeat_bank: list[TranscriptToken] = []
        self._trapdoor_len = 0

    # ------------------------------------------------------------- build

    def simulate_build(self, leakage: BuildLeakage, trapdoor_len: int) -> None:
        """Respond to ``L_build``: p random entries + q random primes."""
        self._trapdoor_len = trapdoor_len
        for _ in range(leakage.entry_count):
            self.transcript.index_entries.append(
                (
                    self.rng.token_bytes(leakage.label_len),
                    self.rng.token_bytes(leakage.payload_len),
                )
            )
        for _ in range(leakage.prime_count):
            self.transcript.primes.append(self._random_prime(leakage.prime_bits))
        acc = self.params.accumulator
        self.transcript.accumulation = self.rng.randrange(2, acc.modulus - 1)

    # ------------------------------------------------------------ search

    def simulate_search(
        self, leakage: SearchLeakage, repeat: RepeatLeakage
    ) -> list[TranscriptToken]:
        """Respond to one query's ``L_search`` under ``L_repeat``.

        Repeated tokens (same keyword, same epoch) must be replayed
        *verbatim* — real PRFs are deterministic, so a distinguisher would
        immediately notice a simulator that re-randomised them.
        """
        out: list[TranscriptToken] = []
        for token_leak in leakage.tokens:
            repeat_of = repeat.observe(token_leak.identity, token_leak.epoch)
            if repeat_of is not None:
                token = self._repeat_bank[repeat_of]
            else:
                token = self._fresh_token(token_leak)
            self._repeat_bank.append(token)
            out.append(token)
        self.transcript.token_groups.append(out)
        return out

    def _fresh_token(self, token_leak) -> TranscriptToken:
        entries = tuple(
            self.rng.token_bytes(16 + self.params.record_id_len)
            for _ in range(token_leak.total_matches)
        )
        acc = self.params.accumulator
        return TranscriptToken(
            trapdoor=self.rng.token_bytes(self._trapdoor_len),
            epoch=token_leak.epoch,
            g1=self.rng.token_bytes(16),
            g2=self.rng.token_bytes(16),
            entries=entries,
            result_hash=self.rng.token_bytes(32),
            prime=self._random_prime(self.params.prime_bits),
            witness=self.rng.randrange(2, acc.modulus - 1),
        )

    # ------------------------------------------------------------ insert

    def simulate_insert(self, leakage: InsertLeakage) -> None:
        """Respond to ``L_insert``: p+ fresh random entries, q+ fresh primes."""
        for _ in range(leakage.entry_count):
            self.transcript.index_entries.append(
                (
                    self.rng.token_bytes(leakage.label_len),
                    self.rng.token_bytes(leakage.payload_len),
                )
            )
        for _ in range(leakage.prime_count):
            self.transcript.primes.append(self._random_prime(leakage.prime_bits))
        acc = self.params.accumulator
        self.transcript.accumulation = self.rng.randrange(2, acc.modulus - 1)

    # ------------------------------------------------------------ helpers

    def _random_prime(self, bits: int) -> int:
        candidate = self.rng.randbits(bits) | (1 << (bits - 1)) | 1
        return next_prime(candidate - 2)
