"""Executable security analysis: leakage functions, simulator, Real/Ideal games."""

from .games import (
    IdealGame,
    RealGame,
    StructuralView,
    byte_histogram,
    chi_square_uniform,
    looks_uniform,
    structural_view,
)
from .leakage_functions import (
    BuildLeakage,
    InsertLeakage,
    OwnerHistory,
    RepeatLeakage,
    SearchLeakage,
    TokenLeakage,
    build_leakage,
    insert_leakage,
    search_leakage,
)
from .simulator import Simulator, Transcript, TranscriptToken

__all__ = [
    "BuildLeakage",
    "IdealGame",
    "InsertLeakage",
    "OwnerHistory",
    "RealGame",
    "RepeatLeakage",
    "SearchLeakage",
    "Simulator",
    "StructuralView",
    "TokenLeakage",
    "Transcript",
    "TranscriptToken",
    "build_leakage",
    "byte_histogram",
    "chi_square_uniform",
    "insert_leakage",
    "looks_uniform",
    "search_leakage",
    "structural_view",
]
