"""The Real/Ideal experiment (Definition 1) as an executable harness.

``RealGame`` drives the actual protocol and records the adversary's view as
a :class:`~repro.security.simulator.Transcript`; ``IdealGame`` drives the
:class:`~repro.security.simulator.Simulator` from leakage alone.  The
distinguisher utilities compare the two transcripts:

* **structural equality** — every size/count the leakage functions promise
  must match *exactly* between Real and Ideal (if it did not, either the
  scheme leaks more than claimed or the leakage functions are wrong);
* **statistical closeness** — the actual byte strings in the real view are
  PRF/cipher outputs, so simple empirical statistics (byte histograms,
  duplicate counts) must not separate them from the simulator's random
  strings.  This is an empirical smoke test of Theorem 2, not a proof.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.rng import DeterministicRNG, default_rng
from ..core.cloud import CloudServer
from ..core.owner import DataOwner
from ..core.params import KeyBundle, SlicerParams
from ..core.query import Query
from ..core.records import Database
from ..core.user import DataUser
from .leakage_functions import (
    OwnerHistory,
    RepeatLeakage,
    build_leakage,
    insert_leakage,
    search_leakage,
)
from .simulator import Simulator, Transcript, TranscriptToken


class RealGame:
    """Run the actual protocol; capture the adversary's (cloud's) view."""

    def __init__(
        self,
        params: SlicerParams,
        keys: KeyBundle,
        rng: DeterministicRNG | None = None,
    ) -> None:
        self.params = params
        self.rng = rng or default_rng()
        self.owner = DataOwner(params, keys=keys, rng=self.rng.spawn())
        self.cloud = CloudServer(params, keys.trapdoor.public)
        self.user: DataUser | None = None
        self.transcript = Transcript()

    def build(self, database: Database) -> None:
        out = self.owner.build(database)
        self._absorb_package(out.cloud_package)
        self.user = DataUser(self.params, out.user_package, self.rng.spawn())

    def insert(self, additions: Database) -> None:
        out = self.owner.insert(additions)
        self._absorb_package(out.cloud_package)
        assert self.user is not None
        self.user.refresh(out.user_package)

    def search(self, query: Query) -> None:
        assert self.user is not None
        tokens = self.user.make_tokens(query)
        response = self.cloud.search(tokens)
        group = [
            TranscriptToken(
                trapdoor=result.token.trapdoor,
                epoch=result.token.epoch,
                g1=result.token.g1,
                g2=result.token.g2,
                entries=tuple(result.entries),
                result_hash=b"",  # recomputable from entries; not separate info
                prime=0,
                witness=result.witness.value,
            )
            for result in response.results
        ]
        self.transcript.token_groups.append(group)

    def _absorb_package(self, package) -> None:
        self.cloud.install(package)
        for label, payload in package.index._entries.items():
            self.transcript.index_entries.append((label, payload))
        self.transcript.primes.extend(package.primes)
        self.transcript.accumulation = package.accumulation


class IdealGame:
    """Run the simulator on the leakage of the same operation sequence."""

    def __init__(
        self,
        params: SlicerParams,
        trapdoor_len: int,
        rng: DeterministicRNG | None = None,
    ) -> None:
        self.params = params
        self.history = OwnerHistory(params)
        self.repeat = RepeatLeakage()
        self.simulator = Simulator(params, rng or default_rng())
        self._trapdoor_len = trapdoor_len
        self._built = False

    def build(self, database: Database) -> None:
        self.history.record_batch(list(database))
        self.simulator.simulate_build(
            build_leakage(database, self.params), self._trapdoor_len
        )
        self._built = True

    def insert(self, additions: Database) -> None:
        self.history.record_batch(list(additions))
        self.simulator.simulate_insert(insert_leakage(additions, self.params))

    def search(self, query: Query) -> None:
        leakage = search_leakage(query, self.history, self.params)
        self.simulator.simulate_search(leakage, self.repeat)

    @property
    def transcript(self) -> Transcript:
        return self.simulator.transcript


@dataclass(frozen=True)
class StructuralView:
    """The shape of a transcript — what the leakage says both games share."""

    entry_count: int
    label_lengths: tuple[int, ...]
    payload_lengths: tuple[int, ...]
    prime_count: int
    prime_bit_lengths: tuple[int, ...]
    #: per query: the sorted multiset of (epoch, result count) — order within
    #: a query is shuffled by Algorithm 3, so only the multiset is structure.
    per_query_tokens: tuple[tuple[tuple[int, int], ...], ...]


def structural_view(transcript: Transcript) -> StructuralView:
    return StructuralView(
        entry_count=len(transcript.index_entries),
        label_lengths=tuple(sorted(len(l) for l in transcript.labels)),
        payload_lengths=tuple(sorted(len(d) for d in transcript.payloads)),
        prime_count=len(transcript.primes),
        prime_bit_lengths=tuple(sorted(p.bit_length() for p in transcript.primes)),
        per_query_tokens=tuple(
            tuple(sorted((t.epoch, len(t.entries)) for t in group))
            for group in transcript.token_groups
        ),
    )


def byte_histogram(blobs: list[bytes]) -> list[int]:
    counts = [0] * 256
    for blob in blobs:
        for byte in blob:
            counts[byte] += 1
    return counts


def chi_square_uniform(counts: list[int]) -> float:
    """Chi-square statistic of a byte histogram against uniform."""
    total = sum(counts)
    if total == 0:
        return 0.0
    expected = total / 256
    return sum((c - expected) ** 2 / expected for c in counts)


def looks_uniform(blobs: list[bytes], threshold: float = 400.0) -> bool:
    """Crude uniformity check: chi-square(255 dof) below ``threshold``.

    255 degrees of freedom has mean 255, stddev ~22.6; 400 is ~6.4 sigma,
    so PRF output and OS randomness both pass comfortably while anything
    structured (ASCII, counters, prefixes) fails immediately.
    """
    return chi_square_uniform(byte_histogram(blobs)) < threshold
