"""Terminal plotting for figure reports (no plotting libraries required).

The paper's figures are line charts; these renderers approximate them with
Unicode so `benchmarks/reports/*.txt` and the CLI can show the *shape* of a
sweep (linear growth, plateaus, crossovers) at a glance, alongside the exact
numeric tables from :mod:`repro.analysis.reporting`.
"""

from __future__ import annotations

from .reporting import FigureReport, Series

_BAR_BLOCKS = " ▏▎▍▌▋▊▉█"
_MARKS = "ox+*#@"


def bar_chart(title: str, rows: list[tuple[str, float]], width: int = 40) -> str:
    """Horizontal bar chart for one series of labelled values."""
    if not rows:
        return f"== {title} ==\n(no data)"
    peak = max(value for _, value in rows) or 1.0
    label_w = max(len(label) for label, _ in rows)
    lines = [f"== {title} =="]
    for label, value in rows:
        filled = value / peak * width
        whole = int(filled)
        frac = int((filled - whole) * (len(_BAR_BLOCKS) - 1))
        bar = "█" * whole + (_BAR_BLOCKS[frac] if frac else "")
        lines.append(f"{label.rjust(label_w)} | {bar} {value:g}")
    return "\n".join(lines)


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    if hi <= lo:
        return 0
    return min(int((value - lo) / (hi - lo) * steps), steps - 1)


def line_chart(figure: FigureReport, width: int = 56, height: int = 12) -> str:
    """Multi-series scatter/line chart of a :class:`FigureReport`."""
    points = [(x, y) for s in figure.series for x, y in s.points]
    if not points:
        return f"== {figure.title} ==\n(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    grid = [[" "] * width for _ in range(height)]
    for idx, series in enumerate(figure.series):
        mark = _MARKS[idx % len(_MARKS)]
        for x, y in series.points:
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][col] = mark

    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={s.label}" for i, s in enumerate(figure.series)
    )
    lines = [f"== {figure.title} ==  ({figure.y_label} vs {figure.x_label})"]
    lines.append(f"{y_hi:>10.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:>10.4g} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    lines.append(" " * 12 + f"{x_lo:<10g}{' ' * max(width - 22, 1)}{x_hi:>10g}")
    lines.append(legend)
    return "\n".join(lines)


def sparkline(values: list[float]) -> str:
    """One-line trend: ``▁▂▃▅▇`` style."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    if hi == lo:
        return blocks[0] * len(values)
    return "".join(blocks[_scale(v, lo, hi, len(blocks))] for v in values)
