"""Byte-accounting helpers behind the storage/overhead figures (4 and 6)."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cloud import SearchResponse
from ..core.state import CloudPackage, EncryptedIndex
from ..core.tokens import SearchToken, tokens_size_bytes


@dataclass(frozen=True)
class BuildSizes:
    """Fig. 4: storage written by Build/Insert."""

    index_bytes: int
    ads_bytes: int
    entries: int
    primes: int

    @property
    def index_mb(self) -> float:
        return self.index_bytes / (1024 * 1024)

    @property
    def ads_mb(self) -> float:
        return self.ads_bytes / (1024 * 1024)


def measure_package(package: CloudPackage) -> BuildSizes:
    return BuildSizes(
        index_bytes=package.index.size_bytes,
        ads_bytes=package.prime_bytes,
        entries=len(package.index),
        primes=len(package.primes),
    )


def measure_index(index: EncryptedIndex) -> int:
    return index.size_bytes


@dataclass(frozen=True)
class SearchSizes:
    """Fig. 6: overhead of one search (tokens, results, VOs)."""

    token_count: int
    token_bytes: int
    result_entries: int
    result_bytes: int
    vo_bytes: int


def measure_search(tokens: list[SearchToken], response: SearchResponse) -> SearchSizes:
    return SearchSizes(
        token_count=len(tokens),
        token_bytes=tokens_size_bytes(tokens),
        result_entries=len(response.all_entries()),
        result_bytes=response.encrypted_result_bytes,
        vo_bytes=response.witness_bytes,
    )
