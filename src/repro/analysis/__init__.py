"""Measurement and reporting: sizes, feature matrix, figure rendering."""

from .costmodel import (
    GasEstimate,
    estimate_gas,
    expected_ads_bytes,
    expected_distinct_keywords,
    expected_equality_matches,
    expected_index_bytes,
    expected_index_entries,
    expected_order_tokens,
)
from .feature_matrix import COLUMNS, TABLE_I, SchemeFeatures, Support, ours, render_table_i
from .plots import bar_chart, line_chart, sparkline
from .reporting import FigureReport, Series, render_kv_table
from .sizing import BuildSizes, SearchSizes, measure_index, measure_package, measure_search

__all__ = [
    "COLUMNS",
    "BuildSizes",
    "FigureReport",
    "GasEstimate",
    "bar_chart",
    "estimate_gas",
    "expected_ads_bytes",
    "expected_distinct_keywords",
    "expected_equality_matches",
    "expected_index_bytes",
    "expected_index_entries",
    "expected_order_tokens",
    "line_chart",
    "sparkline",
    "SchemeFeatures",
    "SearchSizes",
    "Series",
    "Support",
    "TABLE_I",
    "measure_index",
    "measure_package",
    "measure_search",
    "ours",
    "render_kv_table",
    "render_table_i",
]
