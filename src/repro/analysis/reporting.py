"""Figure/table rendering for the benchmark harness.

Benchmarks print the same rows/series the paper's figures plot.  A
:class:`Series` is one line of a figure (e.g. "8-bit index build time"), a
:class:`FigureReport` groups the lines of one subplot and renders an ASCII
table with the x-axis as rows — the form EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Series:
    """One plotted line: label + (x, y) points."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    def ys(self) -> list[float]:
        return [y for _, y in self.points]

    def as_dict(self) -> dict:
        """JSON-ready form: {"label": ..., "points": [[x, y], ...]}."""
        return {"label": self.label, "points": [[x, y] for x, y in self.points]}


@dataclass
class FigureReport:
    """A subplot: title, axis names, and one Series per plotted line."""

    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)

    def new_series(self, label: str) -> Series:
        s = Series(label)
        self.series.append(s)
        return s

    def as_dict(self) -> dict:
        """JSON-ready form mirroring :meth:`render` (machine-readable twin)."""
        return {
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": [s.as_dict() for s in self.series],
        }

    def render(self, y_format: str = "{:.4g}") -> str:
        xs = sorted({x for s in self.series for x, _ in s.points})
        header = [self.x_label] + [s.label for s in self.series]
        rows = [header]
        for x in xs:
            row = [f"{x:g}"]
            for s in self.series:
                match = [y for px, y in s.points if px == x]
                row.append(y_format.format(match[0]) if match else "-")
            rows.append(row)
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = [f"== {self.title}  ({self.y_label}) =="]
        for i, row in enumerate(rows):
            lines.append("  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row)))
            if i == 0:
                lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        return "\n".join(lines)


def render_kv_table(title: str, rows: list[tuple[str, str]]) -> str:
    """Simple two-column table (used for Table II)."""
    key_w = max(len(k) for k, _ in rows)
    val_w = max(len(v) for _, v in rows)
    lines = [f"== {title} ==", "-" * (key_w + val_w + 2)]
    for key, value in rows:
        lines.append(f"{key.ljust(key_w)}  {value.rjust(val_w)}")
    return "\n".join(lines)
