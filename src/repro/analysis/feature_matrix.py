"""Table I: comparison with state-of-the-art verifiable SSE schemes.

The table is static capability metadata from the paper's related-work
analysis; we encode it as data so the benchmark harness can print it in the
paper's exact shape, and so tests can assert the claims the table makes
about *our* implementation (the "Ours" row) against the code's actual
behaviour — e.g. public verifiability is checked by running the contract,
not just asserted in a table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Support(enum.Enum):
    YES = "Y"
    NO = "x"
    NOT_APPLICABLE = "N/A"

    @property
    def mark(self) -> str:
        return {"Y": "✓", "x": "×", "N/A": "N/A"}[self.value]


@dataclass(frozen=True)
class SchemeFeatures:
    """One row of Table I."""

    name: str
    citation: str
    category: str  # "traditional" or "blockchain"
    dynamics: Support
    numerical_comparison: Support
    freshness: Support
    forward_security: Support
    public_verifiability: Support

    def as_row(self) -> tuple[str, ...]:
        return (
            self.name,
            self.dynamics.mark,
            self.numerical_comparison.mark,
            self.freshness.mark,
            self.forward_security.mark,
            self.public_verifiability.mark,
        )


Y, N, NA = Support.YES, Support.NO, Support.NOT_APPLICABLE

TABLE_I: tuple[SchemeFeatures, ...] = (
    SchemeFeatures("Chai-Gong PPTrie", "[3]", "traditional", N, N, NA, NA, N),
    SchemeFeatures("Stefanov et al. / Bost et al.", "[11],[6]", "traditional", Y, N, NA, Y, N),
    SchemeFeatures("ServeDB", "[12]", "traditional", Y, Y, N, N, N),
    SchemeFeatures("Ge et al.", "[9]", "traditional", Y, N, N, N, N),
    SchemeFeatures("GSSE", "[7]", "traditional", Y, N, Y, N, N),
    SchemeFeatures("Liu et al.", "[8]", "traditional", Y, N, N, N, N),
    SchemeFeatures("Soleimanian-Khazaei", "[10]", "traditional", N, N, NA, NA, Y),
    SchemeFeatures("VABKS", "[4]", "traditional", N, N, NA, NA, N),
    SchemeFeatures("VCKS", "[5]", "traditional", Y, N, N, N, Y),
    SchemeFeatures("Hu/Guo/Li et al.", "[13],[14],[15]", "blockchain", Y, N, Y, Y, Y),
    SchemeFeatures("Cai et al.", "[19]", "blockchain", N, N, Y, Y, Y),
    SchemeFeatures("Slicer (ours)", "ours", "blockchain", Y, Y, Y, Y, Y),
)

COLUMNS = (
    "Design",
    "Dynamics",
    "Numerical comparison",
    "Freshness",
    "Forward security",
    "Public verifiability",
)


def ours() -> SchemeFeatures:
    return TABLE_I[-1]


def render_table_i() -> str:
    """Format Table I the way the paper prints it."""
    rows = [COLUMNS] + [scheme.as_row() for scheme in TABLE_I]
    widths = [max(len(row[i]) for row in rows) for i in range(len(COLUMNS))]
    lines = []
    for r, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if r == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)
