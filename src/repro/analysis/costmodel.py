"""Analytical cost model for Slicer deployments.

Closed-form predictions of the quantities the evaluation measures, as
functions of (record count, bit width, distribution).  Besides being useful
for capacity planning ("how big will the index/ADS be at 10M records?"),
the model *is* the paper's asymptotic story, so the test suite checks it
against actual builds — if the implementation ever gained a hidden
super-linear term, these tests would catch it.

All expectations assume uniformly-drawn values; the structural identities
(entries per record, bytes per entry) hold for any distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.params import SlicerParams
from ..crypto.symmetric import NONCE_LEN


def expected_index_entries(n_records: int, value_bits: int, attributes: int = 1) -> int:
    """Exact: each record contributes ``(1 + b)`` entries per attribute."""
    return n_records * (1 + value_bits) * attributes


def expected_index_bytes(n_records: int, params: SlicerParams, attributes: int = 1) -> int:
    """Exact: entries x (label + nonce + record id)."""
    entry_bytes = params.label_len + NONCE_LEN + params.record_id_len
    return expected_index_entries(n_records, params.value_bits, attributes) * entry_bytes


def _expected_distinct(domain: int, draws: int) -> float:
    """E[#occupied cells] for ``draws`` uniform balls into ``domain`` bins."""
    if domain <= 0:
        return 0.0
    return domain * (1.0 - (1.0 - 1.0 / domain) ** draws)


def expected_distinct_keywords(n_records: int, value_bits: int) -> float:
    """E[q]: distinct equality keywords + distinct SORE slices (uniform values).

    The slice at bit level ``i`` is determined by the first ``i`` bits of the
    value, so level-``i`` slices occupy a ``2^i``-bin space; equality
    keywords occupy the full ``2^b`` space.  This sum is what saturates for
    small ``b`` — the analytic form of the paper's 8-bit ADS plateau.
    """
    total = _expected_distinct(1 << value_bits, n_records)
    for level in range(1, value_bits + 1):
        total += _expected_distinct(1 << level, n_records)
    return total


def expected_ads_bytes(n_records: int, params: SlicerParams) -> float:
    """E[prime-list size]: one ``prime_bits``-bit prime per distinct keyword."""
    prime_bytes = (params.prime_bits + 7) // 8
    return expected_distinct_keywords(n_records, params.value_bits) * prime_bytes


def expected_order_tokens(n_records: int, value_bits: int) -> float:
    """E[tokens per order query] for a uniform random query value.

    The level-``i`` query slice can only be a live keyword when the query's
    bit at ``i`` points in the condition's direction (``x_i = 1`` for
    ``>``, ``x_i = 0`` for ``<``) — probability 1/2 per level for a random
    value — and then requires the specific ``i``-bit cell
    ``x_{|i-1} || !x_i`` to be occupied by some stored value, probability
    ``1 - (1 - 2^-i)^n``.
    """
    return 0.5 * sum(
        1.0 - (1.0 - 2.0**-level) ** n_records for level in range(1, value_bits + 1)
    )


def expected_equality_matches(n_records: int, value_bits: int) -> float:
    """E[results of an equality query on a stored value] (uniform values).

    Size-biased: sampling the queried value from stored records makes the
    expected bucket size ``1 + (n-1)/2^b``.
    """
    return 1.0 + (n_records - 1) / float(1 << value_bits)


@dataclass(frozen=True)
class GasEstimate:
    """Predicted gas for the three contract operations of Table II."""

    deployment: int
    insertion: int
    verification: int


def estimate_gas(
    params: SlicerParams,
    result_entries: int = 1,
    tokens: int = 1,
    hash_candidates: int = 89,
) -> GasEstimate:
    """Predict Table II from the gas schedule and the contract's op sequence.

    ``hash_candidates`` is the expected counter walk of ``H_prime``
    (~ ``ln(2^bits)/2`` for ``prime_bits``-bit outputs: ≈ 89 at 256 bits).
    """
    from ..blockchain.gas import GasSchedule
    from ..blockchain.slicer_contract import PRIMALITY_ROUNDS, SlicerContract

    schedule = GasSchedule()
    acc = params.accumulator
    mod_len = (acc.modulus.bit_length() + 7) // 8
    prime_len = (params.prime_bits + 7) // 8

    deployment = (
        schedule.tx_base
        + schedule.tx_create
        + SlicerContract.CODE_SIZE * schedule.code_deposit_per_byte
        + 4 * schedule.sstore_set  # owner, cloud, digest, query counter
        + schedule.calldata_gas(b"\x01" * (40 + mod_len))
        + schedule.keccak_gas(mod_len)
    )

    insertion = (
        schedule.tx_base
        + schedule.calldata_gas(b"\x01" * mod_len)
        + schedule.keccak_gas(mod_len)
        + schedule.sload_cold  # owner check
        + schedule.sstore_reset  # digest
        + schedule.log_gas(1, 32)
    )

    sample_prime = (1 << (params.prime_bits - 1)) | 1
    entry_len = NONCE_LEN + params.record_id_len
    per_token = (
        result_entries * (2 * schedule.keccak_gas(entry_len) + schedule.mulmod)
        + hash_candidates * schedule.keccak_gas(200)
        + PRIMALITY_ROUNDS * schedule.modexp_gas(prime_len, sample_prime, prime_len)
        + schedule.modexp_gas(mod_len, sample_prime, mod_len)
    )
    verification = (
        schedule.tx_base
        + schedule.calldata_gas(
            b"\x01" * (mod_len + tokens * (160 + result_entries * entry_len + mod_len))
        )
        + 6 * schedule.sload_cold
        + 2 * schedule.sstore_reset
        + schedule.keccak_gas(mod_len)
        + tokens * per_token
        + schedule.call_value_transfer
        + schedule.log_gas(1, 40)
    )
    return GasEstimate(int(deployment), int(insertion), int(verification))
