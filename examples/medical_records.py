#!/usr/bin/env python3
"""Medical-records scenario: multi-attribute range search with updates.

The paper's introduction motivates numerical search with "ages in medical
records".  This example outsources a small patient registry with two numeric
attributes (age, systolic blood pressure), runs verified per-attribute range
queries, then exercises the dynamic-update path: a new patient is admitted
(forward-secure insert) and the user's refreshed state immediately sees them
with full on-chain verification.

Run:  python examples/medical_records.py
"""

from repro import AttributedDatabase, Query, RangeQuery, SlicerParams, SlicerSystem

PATIENTS = [
    ("patient-01", {"age": 34, "systolic": 121}),
    ("patient-02", {"age": 67, "systolic": 145}),
    ("patient-03", {"age": 45, "systolic": 130}),
    ("patient-04", {"age": 29, "systolic": 118}),
    ("patient-05", {"age": 71, "systolic": 160}),
    ("patient-06", {"age": 52, "systolic": 138}),
    ("patient-07", {"age": 8, "systolic": 102}),
    ("patient-08", {"age": 61, "systolic": 151}),
]


def names(ids: set[bytes]) -> list[str]:
    return sorted(i.lstrip(b"\x00").decode() for i in ids)


def main() -> None:
    # Patient IDs are longer than the default 8 bytes; widen record_id_len.
    params = SlicerParams.testing(value_bits=8, record_id_len=16)

    registry = AttributedDatabase(bits=8, id_len=16)
    for patient_id, attributes in PATIENTS:
        registry.add(patient_id, attributes)

    system = SlicerSystem(params)
    system.setup(registry)
    print(f"registry outsourced: {len(registry)} patients, 2 attributes each")

    # --- Verified range query: seniors (age >= 65) -----------------------
    seniors = system.search(Query.parse(64, "<", attribute="age"))
    assert seniors.verified
    print(f"age > 64        -> {names(seniors.record_ids)}")

    # --- Two-sided range on the other attribute --------------------------
    hypertension = system.range_search(RangeQuery(140, 200, attribute="systolic"))
    assert hypertension.verified
    print(f"systolic 140-200 -> {names(hypertension.record_ids)}")

    # --- Attribute isolation: same number, different meaning -------------
    # 67 appears as an age; querying systolic == 67 must return nothing.
    crossed = system.search(Query.parse(67, "=", attribute="systolic"))
    assert crossed.verified and not crossed.record_ids
    print("attribute isolation holds: systolic == 67 -> []")

    # --- Dynamic update: a new admission (forward-secure insert) ---------
    admission = AttributedDatabase(bits=8, id_len=16)
    admission.add("patient-09", {"age": 80, "systolic": 149})
    receipt = system.insert(admission)
    print(f"new admission inserted; on-chain ADS update gas = {receipt.gas_used:,}")

    seniors_after = system.search(Query.parse(64, "<", attribute="age"))
    assert seniors_after.verified
    assert len(seniors_after.record_ids) == len(seniors.record_ids) + 1
    print(f"age > 64 (fresh) -> {names(seniors_after.record_ids)}")

    print("every result above was verified by the smart contract")


if __name__ == "__main__":
    main()
