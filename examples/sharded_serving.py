#!/usr/bin/env python3
"""Sharded serving tier over real TCP sockets: scatter/gather on localhost.

Four shard servers listen on ephemeral localhost ports, each holding one
slice of the encrypted index (the full prime list and accumulation value
are replicated, so every shard produces globally-valid witnesses).  The
client routes each search token to its keyword's home shard, fans the
query out with ``asyncio.gather``, and merges the partial responses back
in token order.  The merged bytes are asserted identical to a local
single-cloud reference — the tier is a deployment knob, not a protocol
change — and every merged response passes public verification against the
accumulation value.

Run:  python examples/sharded_serving.py
"""

import asyncio

from repro import SlicerParams
from repro.common.rng import default_rng
from repro.core import wire
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.query import Query
from repro.core.records import make_database
from repro.core.user import DataUser
from repro.core.verify import verify_response
from repro.sharding import HashShardPlan
from repro.sharding.net import ShardClient, ShardServer

SHARDS = 4


async def main() -> None:
    params = SlicerParams.testing(value_bits=8)
    plan = HashShardPlan(SHARDS)

    # 1. The owner builds the encrypted index, pre-split along the plan
    #    (routing needs the keyword PRF output G1, which only the owner and
    #    the tokens see — the index labels hide it).
    owner = DataOwner(params, rng=default_rng(7))
    owner.shard_plan = plan
    database = make_database(
        [("alice", 34), ("bob", 52), ("carol", 34), ("dave", 71), ("erin", 16)],
        bits=8,
    )
    output = owner.build(database)

    # 2. Stand up one shard server per slice on ephemeral localhost ports.
    servers = [
        ShardServer(sid, CloudServer(params, owner.keys.trapdoor.public))
        for sid in range(SHARDS)
    ]
    addresses = [await server.start() for server in servers]
    print(f"{SHARDS} shard servers listening:")
    for sid, (host, port) in enumerate(addresses):
        print(f"  shard {sid}: {host}:{port}")

    # 3. Install every shard's package concurrently, then serve queries.
    client = ShardClient(plan, addresses)
    reference = CloudServer(params, owner.keys.trapdoor.public)
    reference.install(output.cloud_package)
    user = DataUser(params, output.user_package, default_rng(5))
    try:
        await client.install(output.shard_packages)
        print("index slices installed "
              f"({reference.prime_count} accumulated primes, replicated)")

        for text, query in [
            ("value = 34", Query.parse(34, "=")),
            ("value > 50", Query.parse(50, ">")),
            ("value < 35", Query.parse(35, "<")),
        ]:
            tokens = user.make_tokens(query)
            response = await client.search(tokens)

            # The scatter/gather merge is byte-identical to one big cloud...
            assert wire.dump_response(response) == wire.dump_response(
                reference.search(tokens)
            ), "sharded response diverged from the single-cloud reference"
            # ...and publicly verifiable against the accumulation value.
            report = verify_response(params, reference.ads_value, response)
            assert report.ok, "verification failed"

            ids = sorted(
                r.lstrip(b"\x00").decode() for r in user.decrypt_results(response)
            )
            shards_hit = sorted({plan.shard_of(t.g1) for t in tokens})
            print(f"  {text}: {ids}  (tokens={len(tokens)}, shards={shards_hit})")
    finally:
        await client.close()
        for server in servers:
            await server.stop()
    print("all merged responses byte-identical to the single cloud — OK")


if __name__ == "__main__":
    asyncio.run(main())
