#!/usr/bin/env python3
"""Dynamic inventory with deletion and update (the Section V.F extensions).

A warehouse outsources stock levels; items get restocked (update), sold out
(delete) and added (insert).  Deletion uses the dual-instance construction:
one Slicer instance accumulates insertions, a second one deletions, and the
answer is the verified set difference.

Run:  python examples/dynamic_inventory.py
"""

from repro import DualInstanceSlicer, Query, SlicerParams, make_database
from repro.common.rng import default_rng
from repro.core.records import encode_record_id

ID_LEN = 16

STOCK = [
    ("widget", 120),
    ("gadget", 45),
    ("doohickey", 8),
    ("gizmo", 200),
    ("sprocket", 45),
]


def names(ids: set[bytes]) -> list[str]:
    return sorted(i.lstrip(b"\x00").decode() for i in ids)


def show(label: str, result) -> None:
    marker = "verified" if result.verified else "VERIFICATION FAILED"
    print(f"{label:28s} -> {names(result.ids)}  [{marker}]")


def main() -> None:
    params = SlicerParams.testing(value_bits=8, record_id_len=ID_LEN)
    inventory = DualInstanceSlicer(params, default_rng(7), trapdoor_bits=512)
    inventory.build(make_database(STOCK, bits=8, id_len=ID_LEN))
    print(f"outsourced {len(STOCK)} items (value = units in stock)\n")

    low_stock = Query.parse(50, ">")  # items with stock below 50
    show("low stock (< 50)", inventory.search(low_stock))

    # --- A delivery arrives: doohickey restocked 8 -> 150 ----------------
    inventory.update(encode_record_id("doohickey", ID_LEN), 150)
    show("after doohickey restock", inventory.search(low_stock))

    # --- gadget sells out: delete the record ------------------------------
    inventory.delete(encode_record_id("gadget", ID_LEN))
    show("after gadget sold out", inventory.search(low_stock))

    # --- A new product line ------------------------------------------------
    inventory.insert(encode_record_id("whatsit", ID_LEN), 12)
    show("after adding whatsit", inventory.search(low_stock))

    # Both instances stay independently verifiable:
    final = inventory.search(low_stock)
    assert final.insert_report.ok and final.delete_report.ok
    assert final.ids == inventory.expected_ids(low_stock)
    print("\ninsert-instance and delete-instance both verified;")
    print("results equal the plaintext ground truth throughout.")


if __name__ == "__main__":
    main()
