#!/usr/bin/env python3
"""Quickstart: a complete Slicer deployment in ~50 lines.

One data owner outsources an encrypted numeric dataset; a data user runs a
paid, publicly-verified range search; the smart contract settles the fee.

Run:  python examples/quickstart.py
"""

from repro import Query, SlicerParams, SlicerSystem, make_database


def main() -> None:
    # 1. Parameters: 8-bit values, benchmark-grade crypto sizes for speed.
    #    (Use SlicerParams.paper() for 2048-bit accumulator parameters.)
    params = SlicerParams.testing(value_bits=8)

    # 2. The data owner's plaintext database: (record id, numeric value).
    database = make_database(
        [
            ("alice", 34),
            ("bob", 52),
            ("carol", 34),
            ("dave", 71),
            ("erin", 16),
        ],
        bits=8,
    )

    # 3. Stand up the four parties: owner, user, cloud and the blockchain.
    system = SlicerSystem(params)
    system.setup(database)
    print(f"contract deployed, gas = {system.deploy_receipt.gas_used:,}")

    # 4. An equality search: records whose value is exactly 34.
    outcome = system.search(Query.parse(34, "="))
    matched = sorted(r.lstrip(b"\x00").decode() for r in outcome.record_ids)
    print(f"value == 34 -> {matched}")
    assert outcome.verified

    # 5. An order search.  Slicer's convention is "v mc a": Query(50, '>')
    #    returns records with value BELOW 50.
    outcome = system.search(Query.parse(50, ">"))
    matched = sorted(r.lstrip(b"\x00").decode() for r in outcome.record_ids)
    print(f"value < 50  -> {matched}")
    assert outcome.verified

    # 6. The search was publicly verified on chain and the fee settled:
    print(f"on-chain verification gas = {outcome.settle_gas:,}")
    print(f"balances after settlement: {system.balances()}")
    print(f"chain integrity: {system.chain.verify_integrity()}")


if __name__ == "__main__":
    main()
