#!/usr/bin/env python3
"""What does the adversary actually learn?  (Section VI made executable.)

Runs the Real/Ideal security experiment from Definition 1: the real protocol
on one side, a simulator fed ONLY the leakage functions on the other.  The
two adversary views agree on every structural quantity — sizes, counts,
epochs, repeats — and nothing else in the real view is predictable, which is
the empirical content of Theorem 2.  Also demonstrates the analytical cost
model predicting deployment sizes before building anything.

Run:  python examples/leakage_analysis.py
"""

from repro.analysis.costmodel import (
    expected_ads_bytes,
    expected_distinct_keywords,
    expected_index_bytes,
    expected_order_tokens,
)
from repro.common.rng import default_rng
from repro.core.params import KeyBundle, SlicerParams
from repro.core.query import Query
from repro.security.games import IdealGame, RealGame, looks_uniform, structural_view
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

N, BITS = 200, 8


def main() -> None:
    params = SlicerParams.testing(value_bits=BITS)
    keys = KeyBundle.generate(default_rng(1), trapdoor_bits=512)
    database = WorkloadGenerator(default_rng(2)).database(WorkloadSpec(N, BITS))

    # --- 1. Predict the deployment before building it ---------------------
    print(f"cost model predictions for n={N}, b={BITS}:")
    print(f"  index bytes      {expected_index_bytes(N, params):,}")
    print(f"  distinct keywords {expected_distinct_keywords(N, BITS):.0f}")
    print(f"  ADS bytes        {expected_ads_bytes(N, params):,.0f}")
    print(f"  tokens/order query {expected_order_tokens(N, BITS):.2f}")

    # --- 2. Run the Real and Ideal games on the same script ---------------
    operations = [
        ("build", database),
        ("search", Query.parse(100, ">")),
        ("search", Query.parse(42, "=")),
        ("search", Query.parse(100, ">")),  # a repeat!
    ]
    real = RealGame(params, keys, default_rng(3))
    ideal = IdealGame(params, trapdoor_len=keys.trapdoor.public.byte_len, rng=default_rng(4))
    for op, arg in operations:
        getattr(real, op)(arg)
        getattr(ideal, op)(arg)

    rv, iv = structural_view(real.transcript), structural_view(ideal.transcript)
    print("\nReal vs Ideal structural views:")
    print(f"  index entries   {rv.entry_count} vs {iv.entry_count}")
    print(f"  primes          {rv.prime_count} vs {iv.prime_count}")
    print(f"  per-query (epoch, results) multisets:")
    for r_group, i_group in zip(rv.per_query_tokens, iv.per_query_tokens):
        print(f"    {r_group} vs {i_group}")
    assert rv == iv, "leakage functions do not match the protocol!"

    # --- 3. The repeat pattern is visible in both views (L_repeat) --------
    def token_keys(transcript):
        return [t.g1 for t in transcript.tokens]

    real_keys, ideal_keys = token_keys(real.transcript), token_keys(ideal.transcript)
    real_repeats = len(real_keys) - len(set(real_keys))
    ideal_repeats = len(ideal_keys) - len(set(ideal_keys))
    print(f"\nrepeated tokens observed: real={real_repeats}, ideal={ideal_repeats}")
    assert real_repeats == ideal_repeats > 0

    # --- 4. Beyond structure, the real view is PRF noise -------------------
    assert looks_uniform(real.transcript.labels)
    assert looks_uniform(real.transcript.payloads)
    print("real index labels/payloads pass the uniformity check:")
    print("  the adversary sees shapes, repeats and access patterns - nothing else.")


if __name__ == "__main__":
    main()
