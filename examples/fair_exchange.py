#!/usr/bin/env python3
"""Fair exchange under mutual distrust: cheating clouds and repudiating users.

The paper's threat model (Section IV.B): the cloud may return incorrect or
incomplete results; the user may deny correct results to dodge the search
fee.  The blockchain escrow resolves both — this example plays out every
dishonest-cloud behaviour and shows the money always ends up with the honest
party.

Run:  python examples/fair_exchange.py
"""

from repro import (
    MaliciousCloud,
    Misbehavior,
    Query,
    SlicerParams,
    SlicerSystem,
    make_database,
)
from repro.common.rng import default_rng
from repro.system import DEFAULT_FUNDING

TRANSACTIONS = [(f"tx-{i:03d}", (i * 37) % 256) for i in range(40)]
PAYMENT = 25_000


def run_scenario(params: SlicerParams, misbehavior: Misbehavior | None) -> None:
    system = SlicerSystem(params, rng=default_rng(42))
    if misbehavior is not None:
        system.cloud = MaliciousCloud(
            params, system.owner.keys.trapdoor.public, misbehavior, default_rng(1)
        )
    system.setup(make_database(TRANSACTIONS, bits=8))

    outcome = system.search(Query.parse(100, ">"), payment=PAYMENT)
    balances = system.balances()
    cloud_delta = balances["cloud"] - DEFAULT_FUNDING
    user_delta = balances["user"] - DEFAULT_FUNDING

    label = misbehavior.value if misbehavior else "honest"
    verdict = "PAID" if outcome.verified else "REFUNDED"
    print(
        f"{label:>16s}: verified={str(outcome.verified):5s} "
        f"cloud {cloud_delta:+8d}  user {user_delta:+8d}  -> {verdict}"
    )

    if misbehavior is None:
        assert outcome.verified and cloud_delta == PAYMENT and user_delta == -PAYMENT
        # The user cannot repudiate: settlement happened on chain, and the
        # decrypted results are exactly the matching records.
        assert len(outcome.record_ids) == sum(1 for _, v in TRANSACTIONS if v < 100)
    else:
        assert not outcome.verified and cloud_delta == 0 and user_delta == 0


def main() -> None:
    params = SlicerParams.testing(value_bits=8)
    print(f"escrowed payment per search: {PAYMENT}\n")

    run_scenario(params, None)
    for misbehavior in [
        Misbehavior.DROP_ENTRY,
        Misbehavior.INJECT_ENTRY,
        Misbehavior.TAMPER_ENTRY,
        Misbehavior.FORGE_WITNESS,
        Misbehavior.EMPTY_RESULT,
    ]:
        run_scenario(params, misbehavior)

    print(
        "\nevery tampering attempt was caught by Algorithm 5 on chain;"
        "\nthe honest cloud was paid without any user cooperation."
    )


if __name__ == "__main__":
    main()
