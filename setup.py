"""Legacy setup shim.

The reference environment has no ``wheel`` package, so ``pip install -e .``
(which builds an editable wheel under PEP 660) cannot run offline.  This
shim lets ``python setup.py develop`` provide the same editable install; all
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
